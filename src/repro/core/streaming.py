"""Streaming MH-K-Modes — the paper's Further Work, implemented.

The paper closes with: "adapting our algorithm to develop an online
streaming clustering framework would be another exciting future
research topic."  The index makes this natural: the expensive part of
assigning an item is gone (shortlists replace full scans), and a new
item can be hashed into the existing buckets in O(bands).

:class:`StreamingMHKModes` works in two phases:

1. **bootstrap** — an ordinary MH-K-Modes fit on an initial batch
   establishes modes and the clustered index (built *without*
   precomputed neighbour lists so it stays insertable);
2. **streaming** — arriving items are MinHashed, inserted into the
   buckets with their cluster references, and assigned to the nearest
   mode on their shortlists.  Per-cluster per-attribute value counts
   are maintained incrementally, and modes are refreshed from these
   counts every ``refresh_interval`` arrivals — no pass over past data
   ever happens again.

Two ingest paths share one semantics:

* :meth:`StreamingMHKModes.push` — the paper-shaped per-item loop
  (hash, shortlist, assign, insert, count);
* :meth:`StreamingMHKModes.extend` — the batch pipeline: the whole
  chunk is MinHashed at once (the same
  :meth:`~repro.lsh.minhash.MinHasher.signatures_categorical` kernel
  the fit uses, optionally chunked across a persistent worker pool —
  see :class:`~repro.api.StreamSpec`), shortlists for all rows come
  from one batched index query, assignment runs through the engine's
  vectorised shortlist kernel, and the index absorbs the chunk through
  one amortised :meth:`~repro.lsh.index.BaseClusteredIndex.insert_batch`.
  Intra-chunk dependencies (a row colliding with an *earlier* row of
  the same chunk, whose freshly inserted cluster reference the
  sequential loop would see) are resolved exactly by an ordered
  collision walk over only the rows that share a band key within the
  chunk — labels and refreshed modes are **bit-identical** to the
  sequential ``push()`` loop for every backend and chunk size, which
  ``tests/properties/test_extend_equivalence.py`` asserts.

Items that collide with nothing fall back to a full mode scan (exact,
rare) or can be rejected, per ``stream_fallback``.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.api.legacy import resolve_specs
from repro.api.model import ClusterModel
from repro.api.protocol import EstimatorProtocol, SpecAttributeSurface
from repro.api.registry import register_estimator
from repro.api.specs import EngineSpec, LSHSpec, StreamSpec, TrainSpec
from repro.core.mh_kmodes import MHKModes
from repro.core.shortlist import best_centroids_full_scan
from repro.engine.backends import resolve_backend
from repro.engine.chunking import chunk_ranges
from repro.engine.parallel import best_shortlisted_centroids
from repro.engine.pool import PersistentPool
from repro.engine.shared import resolve_array
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    check_fitted,
)
from repro.lsh.bands import compute_band_keys
from repro.lsh.minhash import MinHasher
from repro.obs import PhaseSpans, traced

__all__ = ["ClusterModeTracker", "StreamingMHKModes", "DENSE_CATEGORY_LIMIT"]

#: The batch-ingest pipeline phases, in pipeline order.  Both
#: ``extend_stats_`` (last call) and ``extend_stats_total_``
#: (lifetime) carry exactly these keys.
_EXTEND_PHASES = ("signatures", "shortlist", "walk", "update", "refresh")

#: Largest per-attribute category cardinality the dense count tensor
#: keeps; beyond it the tracker falls back to dict-of-dicts storage.
DENSE_CATEGORY_LIMIT = 2048

#: Cap on total dense count-tensor elements (clusters × attributes ×
#: categories); the dense layout is used only while under it.
_DENSE_ELEMENT_BUDGET = 16_000_000


class ClusterModeTracker:
    """Incremental per-cluster, per-attribute category counts.

    Maintains, for every cluster and attribute, value counts so the
    mode (most frequent value, smallest code on ties) can be read off
    at any time without touching historical items.

    Two array-backed ideas make it fast at streaming rates:

    * counts live in a dense ``(n_clusters, n_attributes,
      n_categories)`` int64 tensor updated with ``np.add.at`` (batch
      counting is one scatter-add); when the category cardinality
      outgrows ``dense_limit`` — or the tensor would outgrow a fixed
      element budget — the tracker converts itself once to a
      dict-of-dicts layout whose batch updates aggregate the chunk
      with a single flat ``np.unique`` over encoded *(cluster,
      attribute, value)* triples, so dict traffic scales with distinct
      triples, not items;
    * the running mode itself is tracked **incrementally** in two
      ``(n_clusters, n_attributes)`` arrays (best value / best count).
      Counts only ever increase, so an increment can only improve the
      incremented value's standing — comparing each updated triple
      against the cached best (higher count wins, smaller code on
      equal counts) keeps the cache exactly equal to a full argmax at
      all times, and :meth:`modes` becomes a cached ``np.where`` read
      instead of a scan over every counter.  The tie-break matches
      :func:`repro.kmodes.modes.compute_modes` exactly, and both
      layouts are conformance-tested against each other.

    Parameters
    ----------
    n_clusters, n_attributes:
        Count tensor extents.
    n_categories:
        Expected category cardinality (the tensor grows on demand when
        larger codes arrive; ``None`` starts small).
    storage:
        ``'auto'`` (dense while feasible, dict beyond — the default),
        ``'dense'`` or ``'dict'`` (forced layouts, used by the
        conformance tests).
    dense_limit:
        The category-cardinality threshold above which ``'auto'``
        falls back to dict storage.
    """

    def __init__(
        self,
        n_clusters: int,
        n_attributes: int,
        n_categories: int | None = None,
        storage: str = "auto",
        dense_limit: int = DENSE_CATEGORY_LIMIT,
    ):
        if n_clusters <= 0 or n_attributes <= 0:
            raise ConfigurationError(
                "n_clusters and n_attributes must be positive, got "
                f"{n_clusters} and {n_attributes}"
            )
        if storage not in ("auto", "dense", "dict"):
            raise ConfigurationError(
                f"storage must be 'auto', 'dense' or 'dict', got {storage!r}"
            )
        if n_categories is not None and n_categories <= 0:
            raise ConfigurationError(
                f"n_categories must be positive, got {n_categories}"
            )
        if dense_limit <= 0:
            raise ConfigurationError(
                f"dense_limit must be positive, got {dense_limit}"
            )
        self.n_clusters = int(n_clusters)
        self.n_attributes = int(n_attributes)
        self.storage_mode = storage
        self.dense_limit = int(dense_limit)
        self.cluster_sizes = np.zeros(n_clusters, dtype=np.int64)
        self._attr_idx = np.arange(n_attributes, dtype=np.int64)
        self._counts: list[list[dict[int, int]]] | None = None
        self._dense: np.ndarray | None = None
        # The incrementally maintained argmax: value with the highest
        # count (smallest value on ties) per (cluster, attribute), and
        # that count (0 = no items yet -> mode falls back).
        self._best_value = np.zeros(
            (self.n_clusters, self.n_attributes), dtype=np.int64
        )
        self._best_count = np.zeros(
            (self.n_clusters, self.n_attributes), dtype=np.int64
        )
        if storage == "dict":
            self._init_dict()
        else:
            capacity = (
                int(n_categories)
                if n_categories is not None
                else min(16, self.dense_limit)
            )
            if storage == "auto" and not self._dense_feasible(capacity):
                self._init_dict()
            else:
                self._dense = np.zeros(
                    (self.n_clusters, self.n_attributes, capacity),
                    dtype=np.int64,
                )

    @property
    def storage(self) -> str:
        """The live layout: ``'dense'`` or ``'dict'``."""
        return "dense" if self._dense is not None else "dict"

    @classmethod
    def from_assignment(
        cls, X: np.ndarray, labels: np.ndarray, n_clusters: int, **kwargs
    ) -> "ClusterModeTracker":
        """Build counts from an existing batch assignment."""
        X = np.asarray(X)
        hint = kwargs.pop("n_categories", None)
        if (
            hint is None
            and X.size
            and np.issubdtype(X.dtype, np.integer)
            and X.min() >= 0
        ):
            hint = int(X.max()) + 1
        tracker = cls(n_clusters, X.shape[1], n_categories=hint, **kwargs)
        tracker.add_batch(X, np.asarray(labels, dtype=np.int64))
        return tracker

    # -- layout plumbing -------------------------------------------------

    def _dense_feasible(self, capacity: int) -> bool:
        return (
            capacity <= self.dense_limit
            and self.n_clusters * self.n_attributes * capacity
            <= _DENSE_ELEMENT_BUDGET
        )

    def _init_dict(self) -> None:
        self._counts = [
            [{} for _ in range(self.n_attributes)]
            for _ in range(self.n_clusters)
        ]
        self._dense = None

    def _to_dict(self) -> None:
        """One-way conversion of the dense counts into dict storage."""
        dense = self._dense
        assert dense is not None
        self._init_dict()
        assert self._counts is not None
        c_idx, a_idx, v_idx = np.nonzero(dense)
        values = dense[c_idx, a_idx, v_idx]
        for c, a, v, count in zip(
            c_idx.tolist(), a_idx.tolist(), v_idx.tolist(), values.tolist()
        ):
            self._counts[c][a][v] = count

    def _accommodate(self, values: np.ndarray) -> bool:
        """Make the dense tensor able to count ``values``.

        Grows capacity by doubling; converts to dict storage when the
        grown tensor would break the threshold/budget (``'auto'``) or
        when negative codes appear.  Returns True while dense.
        """
        if self._dense is None:
            return False
        if values.size == 0:
            return True
        low = int(values.min())
        if low < 0:
            if self.storage_mode == "dense":
                raise DataValidationError(
                    "dense mode tracking requires non-negative category "
                    f"codes, got {low}"
                )
            self._to_dict()
            return False
        high = int(values.max())
        capacity = self._dense.shape[2]
        if high < capacity:
            return True
        new_capacity = max(4, capacity)
        while new_capacity <= high:
            new_capacity *= 2
        if self.storage_mode == "auto" and not self._dense_feasible(new_capacity):
            self._to_dict()
            return False
        grown = np.zeros(
            (self.n_clusters, self.n_attributes, new_capacity), dtype=np.int64
        )
        grown[:, :, :capacity] = self._dense
        self._dense = grown
        return True

    def _update_best(
        self,
        c_arr: np.ndarray,
        a_arr: np.ndarray,
        v_arr: np.ndarray,
        new_counts: np.ndarray,
    ) -> None:
        """Fold updated count triples into the cached argmax.

        ``new_counts`` holds each triple's count *after* the update.
        Per (cluster, attribute) pair the best candidate is picked with
        one lexsort (count descending, value ascending) and compared
        against the cache; because counts only grow, a stale cached
        entry is always itself among the candidates with its new count,
        so the cache stays exactly the full argmax.
        """
        if len(c_arr) == 0:
            return
        order = np.lexsort((v_arr, -new_counts))
        pair = c_arr[order] * self.n_attributes + a_arr[order]
        first = np.unique(pair, return_index=True)[1]
        winners = order[first]
        cc = c_arr[winners]
        aa = a_arr[winners]
        vv = v_arr[winners]
        nn = new_counts[winners]
        cached_count = self._best_count[cc, aa]
        cached_value = self._best_value[cc, aa]
        better = (nn > cached_count) | ((nn == cached_count) & (vv < cached_value))
        if np.any(better):
            self._best_count[cc[better], aa[better]] = nn[better]
            self._best_value[cc[better], aa[better]] = vv[better]

    # -- counting --------------------------------------------------------

    def add(self, item: np.ndarray, cluster: int) -> None:
        """Count one item into ``cluster``."""
        if not 0 <= cluster < self.n_clusters:
            raise DataValidationError(
                f"cluster {cluster} outside [0, {self.n_clusters})"
            )
        values = np.asarray(item, dtype=np.int64)
        if values.ndim != 1 or values.shape[0] != self.n_attributes:
            raise DataValidationError(
                f"item must be 1-D with {self.n_attributes} attributes, "
                f"got shape {values.shape}"
            )
        if self._accommodate(values):
            assert self._dense is not None
            self._dense[cluster, self._attr_idx, values] += 1
            new_counts = self._dense[cluster, self._attr_idx, values]
        else:
            assert self._counts is not None
            row = self._counts[cluster]
            new_counts = np.empty(self.n_attributes, dtype=np.int64)
            for j in range(self.n_attributes):
                value = int(values[j])
                count = row[j].get(value, 0) + 1
                row[j][value] = count
                new_counts[j] = count
        self._update_best(
            np.full(self.n_attributes, cluster, dtype=np.int64),
            self._attr_idx,
            values,
            new_counts,
        )
        self.cluster_sizes[cluster] += 1

    def add_batch(self, X: np.ndarray, labels: np.ndarray) -> None:
        """Count a whole batch at once (order-independent, so identical
        to calling :meth:`add` row by row)."""
        X = np.asarray(X)
        labels = np.asarray(labels, dtype=np.int64)
        if X.ndim != 2 or X.shape[1] != self.n_attributes:
            raise DataValidationError(
                f"X must be (n, {self.n_attributes}), got shape {X.shape}"
            )
        if labels.shape != (X.shape[0],):
            raise DataValidationError(
                f"{X.shape[0]} items but {len(labels)} labels"
            )
        if X.shape[0] == 0:
            return
        if labels.min() < 0 or labels.max() >= self.n_clusters:
            raise DataValidationError(
                f"cluster {int(labels.min() if labels.min() < 0 else labels.max())} "
                f"outside [0, {self.n_clusters})"
            )
        values = X.astype(np.int64, copy=False)
        m = self.n_attributes
        if self._accommodate(values):
            assert self._dense is not None
            # Scatter-add the batch into the count tensor and gather
            # each triple's final count (repro.kernels: compiled when a
            # backend is available, np.add.at + fancy-gather otherwise;
            # integer adds commute, so every backend is bit-identical).
            new_counts = kernels.count_update(
                self._dense, np.ascontiguousarray(values), labels
            )
            # gathered after the scatter-add, every occurrence of a
            # triple reads the same final count
            self._update_best(
                np.repeat(labels, m),
                np.tile(self._attr_idx, len(labels)),
                values.reshape(-1),
                new_counts.reshape(-1),
            )
        else:
            assert self._counts is not None
            # one flat unique over encoded (cluster, attribute, value)
            # triples: dict traffic scales with distinct triples
            flat_values = values.reshape(-1)
            low = int(flat_values.min())
            span = int(flat_values.max()) - low + 1
            if span > (2**62) // (self.n_clusters * m):
                # the flat encoding would overflow int64 (gigantic code
                # range, e.g. hashed 64-bit ids): count row by row —
                # identical semantics, just without the batched unique
                for row, label in zip(values, labels.tolist()):
                    self.add(row, label)
                return
            pair_key = (
                np.repeat(labels, m) * m
                + np.tile(self._attr_idx, len(labels))
            )
            encoded = pair_key * span + (flat_values - low)
            uniq, occurrences = np.unique(encoded, return_counts=True)
            u_pair = uniq // span
            v_arr = uniq - u_pair * span + low
            c_arr = u_pair // m
            a_arr = u_pair - c_arr * m
            new_counts = np.empty(len(uniq), dtype=np.int64)
            counts_rows = self._counts
            for i, (c, a, v, occ) in enumerate(
                zip(
                    c_arr.tolist(),
                    a_arr.tolist(),
                    v_arr.tolist(),
                    occurrences.tolist(),
                )
            ):
                bucket = counts_rows[c][a]
                count = bucket.get(v, 0) + occ
                bucket[v] = count
                new_counts[i] = count
            self._update_best(c_arr, a_arr, v_arr, new_counts)
        self.cluster_sizes += np.bincount(labels, minlength=self.n_clusters)

    # -- modes -----------------------------------------------------------

    def mode_of(self, cluster: int, fallback: np.ndarray) -> np.ndarray:
        """Current mode of ``cluster`` (``fallback`` where it is empty)."""
        if not 0 <= cluster < self.n_clusters:
            raise DataValidationError(
                f"cluster {cluster} outside [0, {self.n_clusters})"
            )
        out = fallback.copy()
        populated = self._best_count[cluster] > 0
        out[populated] = self._best_value[cluster][populated]
        return out

    def modes(self, fallback: np.ndarray) -> np.ndarray:
        """All cluster modes at once — a cached read, not a scan."""
        fallback = np.asarray(fallback)
        if fallback.shape != (self.n_clusters, self.n_attributes):
            raise DataValidationError(
                f"fallback shape {fallback.shape} != "
                f"({self.n_clusters}, {self.n_attributes})"
            )
        return np.where(
            self._best_count > 0, self._best_value, fallback
        ).astype(fallback.dtype, copy=False)


# ----------------------------------------------------------------------
# chunked ingest kernel (module-level so the process backend can
# dispatch it)
# ----------------------------------------------------------------------


@traced("extend.signature_chunk")
def _stream_signature_chunk(static, dynamic, span: tuple[int, int]) -> np.ndarray:
    """Kernel: MinHash one row span of the (possibly shared) arrivals.

    ``static`` pins the hasher and frozen encoding state for the
    pool's lifetime; ``dynamic`` is the arrival matrix — a
    :class:`~repro.engine.shared.SharedArray` request buffer for
    process pools, the array itself for threads.
    """
    hasher, domain, absent = static
    X = resolve_array(dynamic)
    start, stop = span
    return hasher.signatures_categorical(
        X[start:stop], domain_size=domain, absent_code=absent
    )


@register_estimator("streaming-mh-kmodes")
class StreamingMHKModes(SpecAttributeSurface, EstimatorProtocol):
    """Online MH-K-Modes over an unbounded item stream.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    lsh, engine, train:
        :class:`~repro.api.LSHSpec` / :class:`~repro.api.EngineSpec` /
        :class:`~repro.api.TrainSpec`, configuring both the bootstrap
        fit and the streaming index (as in :class:`repro.core.MHKModes`).
        With ``train.update_refs='batch'`` the bootstrap runs the
        engine's vectorised batch passes on any backend; with
        ``engine.n_shards > 1`` the insertable index is a
        :class:`~repro.engine.ShardedClusteredLSHIndex` and streamed
        arrivals are hashed into the shards round-robin.
    stream:
        :class:`~repro.api.StreamSpec` — how :meth:`extend` batches are
        ingested (hashing backend/workers and the chunk size bounding
        worker tasks and processing segments).  Every setting produces
        labels and modes bit-identical to the sequential :meth:`push`
        loop; parallel backends keep a persistent worker pool alive
        across :meth:`extend` calls (release it with :meth:`close` or
        by using the estimator as a context manager).
    absent_code, domain_size:
        As in :class:`repro.core.MHKModes`.
    refresh_interval:
        Modes are recomputed from the incremental counts after this
        many streamed arrivals (and counts continue to accumulate in
        between).  Smaller = fresher modes, more overhead.
    stream_fallback:
        ``'full'`` — items whose shortlist is empty are assigned by a
        full scan over the modes (exact, rare);
        ``'error'`` — raise instead.  (:meth:`extend` raises *before*
        absorbing any item of the offending chunk segment, where the
        sequential loop would stop mid-stream.)
    **legacy:
        Deprecated flat kwargs (``bands=``, ``seed=``, ``backend=``,
        ...), mapped onto the specs with a
        :class:`DeprecationWarning`.

    Attributes
    ----------
    modes_:
        Current cluster modes.
    n_seen_:
        Total items absorbed (bootstrap + streamed).
    n_fallbacks_:
        Streamed items that needed the full-scan fallback.
    extend_stats_:
        Per-phase wall-clock seconds of the most recent :meth:`extend`
        call (``signatures`` / ``shortlist`` / ``walk`` / ``update`` /
        ``refresh``).

    Examples
    --------
    >>> from repro.api import LSHSpec
    >>> from repro.data import RuleBasedGenerator
    >>> data = RuleBasedGenerator(n_clusters=5, n_attributes=12, seed=0).generate(120)
    >>> stream = StreamingMHKModes(n_clusters=5, lsh=LSHSpec(bands=8, rows=1, seed=0))
    >>> labels = stream.bootstrap(data.X[:80]).extend(data.X[80:])
    >>> len(labels)
    40
    """

    _accepts_specs = True
    _default_lsh = LSHSpec(family="minhash", bands=20, rows=5)
    _default_engine = EngineSpec()
    _default_train = TrainSpec()
    _default_stream = StreamSpec()

    def __init__(
        self,
        n_clusters: int,
        lsh: LSHSpec | dict | None = None,
        engine: EngineSpec | dict | None = None,
        train: TrainSpec | dict | None = None,
        stream: StreamSpec | dict | None = None,
        absent_code: int | None = None,
        domain_size: int | None = None,
        refresh_interval: int = 200,
        stream_fallback: str = "full",
        **legacy,
    ):
        # set_params re-runs __init__ on a live object: release any
        # worker pool the previous configuration had opened.
        existing_pool = getattr(self, "_stream_pool", None)
        if existing_pool is not None:
            existing_pool.close()
        lsh, engine, train, backend_instance = resolve_specs(
            type(self).__name__,
            lsh,
            engine,
            train,
            legacy,
            lsh_default=self._default_lsh,
            engine_default=self._default_engine,
            train_default=self._default_train,
        )
        if isinstance(stream, dict):
            stream = StreamSpec.from_dict(stream)
        elif stream is None:
            stream = self._default_stream
        elif not isinstance(stream, StreamSpec):
            raise ConfigurationError(
                f"stream must be a StreamSpec, got {type(stream).__name__}"
            )
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
        if lsh.family != "minhash":
            raise ConfigurationError(
                f"StreamingMHKModes supports the 'minhash' family only, "
                f"got {lsh.family!r}"
            )
        if refresh_interval <= 0:
            raise ConfigurationError(
                f"refresh_interval must be positive, got {refresh_interval}"
            )
        if stream_fallback not in ("full", "error"):
            raise ConfigurationError(
                f"stream_fallback must be 'full' or 'error', got {stream_fallback!r}"
            )
        self.n_clusters = int(n_clusters)
        self.lsh = lsh
        self.engine = engine
        self.train = train
        self.stream = stream
        self._backend_instance = backend_instance
        self.absent_code = absent_code
        self.domain_size = domain_size
        self.refresh_interval = int(refresh_interval)
        self.stream_fallback = stream_fallback

        self._bootstrap_model: MHKModes | None = None
        self._hasher: MinHasher | None = None
        self._tracker: ClusterModeTracker | None = None
        self._fitted_domain: int | None = None
        self._since_refresh = 0
        self._modes: np.ndarray | None = None
        self._stream_pool: PersistentPool | None = None
        self._stream_backend = None
        self.n_seen_: int = 0
        self.n_fallbacks_: int = 0
        self.extend_stats_: dict[str, float] = {}
        self._extend_totals: dict[str, float] = dict.fromkeys(
            _EXTEND_PHASES, 0.0
        )

    # legacy read surface (bands/rows/seed/backend/...) comes from
    # SpecAttributeSurface; update_refs stays the raw spec value here
    # because resolution happens inside the bootstrap fit.

    def _is_fitted(self) -> bool:
        return self._bootstrap_model is not None

    @property
    def modes_(self) -> np.ndarray:
        """Current cluster modes."""
        check_fitted(self)
        return self._modes

    # ------------------------------------------------------------------
    # ingest-pool lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "StreamingMHKModes":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the streaming worker pool (idempotent).

        Only parallel :class:`~repro.api.StreamSpec` backends ever open
        one; serial streaming needs no cleanup.
        """
        if self._stream_pool is not None:
            self._stream_pool.close()
            self._stream_pool = None
            self._stream_backend = None

    def _ensure_stream_pool(self) -> PersistentPool:
        if self._stream_pool is None:
            backend = resolve_backend(self.stream.backend, self.stream.n_jobs)
            self._stream_backend = backend
            self._stream_pool = PersistentPool(
                backend,
                static=(self._hasher, self._fitted_domain, self.absent_code),
                metrics=True,  # ship process-worker kernel spans home
            )
        return self._stream_pool

    # ------------------------------------------------------------------
    # phase 1: bootstrap
    # ------------------------------------------------------------------

    def bootstrap(self, X: np.ndarray, initial_centroids: np.ndarray | None = None):
        """Fit the initial batch and build the insertable index."""
        self.close()  # a re-bootstrap invalidates the pool's pinned state
        model = MHKModes(
            n_clusters=self.n_clusters,
            lsh=self.lsh,
            engine=self.engine,
            train=self.train,
            absent_code=self.absent_code,
            domain_size=self.domain_size,
            precompute_neighbours=False,  # keeps the index insertable
        )
        if self._backend_instance is not None:
            model._backend_instance = self._backend_instance
        model.fit(X, initial_centroids=initial_centroids)
        assert model.labels_ is not None and model.centroids_ is not None
        assert model.index_ is not None
        self._bootstrap_model = model
        self._hasher = model._hasher
        self._fitted_domain = (
            self.domain_size
            if self.domain_size is not None
            else model._fitted_domain_size
        )
        self._tracker = ClusterModeTracker.from_assignment(
            np.asarray(X), model.labels_, self.n_clusters
        )
        self._modes = model.centroids_.copy()
        self.n_seen_ = len(X)
        self._since_refresh = 0
        self.n_fallbacks_ = 0
        self.extend_stats_ = {}
        self._extend_totals = dict.fromkeys(_EXTEND_PHASES, 0.0)
        return self

    # ------------------------------------------------------------------
    # phase 2: streaming
    # ------------------------------------------------------------------

    def push(self, item: np.ndarray) -> int:
        """Absorb one arriving item; returns its assigned cluster.

        The paper-shaped sequential path — and the reference semantics
        :meth:`extend` is pinned to, bit for bit.
        """
        check_fitted(self)
        assert (
            self._bootstrap_model is not None
            and self._hasher is not None
            and self._tracker is not None
            and self._modes is not None
        )
        item = np.asarray(item)
        if item.ndim != 1 or item.shape[0] != self._modes.shape[1]:
            raise DataValidationError(
                f"item must be 1-D with {self._modes.shape[1]} attributes, "
                f"got shape {item.shape}"
            )
        index = self._bootstrap_model.index_
        assert index is not None

        signature = self._hasher.signatures_categorical(
            item[None, :],
            domain_size=self._fitted_domain,
            absent_code=self.absent_code,
        )[0]
        shortlist = index.candidate_clusters_for_signature(signature)
        if shortlist.size == 0:
            self._require_stream_fallback()
            self.n_fallbacks_ += 1
            shortlist = np.arange(self.n_clusters, dtype=np.int64)
        distances = np.count_nonzero(
            self._modes[shortlist] != item[None, :], axis=1
        )
        cluster = int(shortlist[np.argmin(distances)])

        index.insert(signature, cluster)
        self._tracker.add(item, cluster)
        self.n_seen_ += 1
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_interval:
            self.refresh_modes()
        return cluster

    def extend(self, X: np.ndarray) -> np.ndarray:
        """Absorb a batch of arrivals; returns their cluster labels.

        The batch ingest pipeline (see the module docstring): one
        MinHash pass over the whole chunk — routed through the
        :class:`~repro.api.StreamSpec` worker pool on parallel
        backends — one batched shortlist query, the vectorised
        assignment kernel, an ordered collision walk for rows that
        share a band key within the chunk, one amortised
        ``insert_batch`` and one batched count update (compiled via
        :mod:`repro.kernels` on the dense tier) per processing
        segment.  Segments are bounded by
        ``stream.chunk_items`` *and* by the next mode-refresh boundary,
        so labels and refreshed modes are bit-identical to calling
        :meth:`push` on every row in order — for any chunk size and
        any backend.

        Per-phase wall-clock timings of the call land in
        :attr:`extend_stats_` (the *last* call's snapshot — it is reset
        at each entry); lifetime cumulative totals accumulate in
        :attr:`extend_stats_total_`.  Each phase is also emitted as an
        ``"extend.<phase>"`` span (see :mod:`repro.obs`), so the same
        numbers reach the metrics registry and the trace stream.
        """
        check_fitted(self)
        assert self._modes is not None
        X = np.asarray(X)
        if X.ndim != 2:
            raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if X.shape[1] != self._modes.shape[1]:
            raise DataValidationError(
                f"items must have {self._modes.shape[1]} attributes, "
                f"got {X.shape[1]}"
            )
        stats = dict.fromkeys(_EXTEND_PHASES, 0.0)
        self.extend_stats_ = stats
        phases = PhaseSpans(
            "extend", totals=stats, on_phase=self._accumulate_extend_total
        )
        n = X.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if not np.issubdtype(X.dtype, np.integer):
            raise DataValidationError(
                f"X must hold integer category codes, got dtype {X.dtype}"
            )
        X = np.ascontiguousarray(X, dtype=np.int64)
        with phases.span("signatures", rows=n, kernels=kernels.active_backend()):
            signatures = self._batch_signatures(X)

        labels = np.empty(n, dtype=np.int64)
        position = 0
        while position < n:
            segment = min(
                n - position,
                self.stream.chunk_items,
                self.refresh_interval - self._since_refresh,
            )
            window = slice(position, position + segment)
            labels[window] = self._extend_segment(
                X[window], signatures[window], phases
            )
            position += segment
        return labels

    def _accumulate_extend_total(self, name: str, seconds: float) -> None:
        self._extend_totals[name] = (
            self._extend_totals.get(name, 0.0) + seconds
        )

    @property
    def extend_stats_total_(self) -> dict[str, float]:
        """Cumulative per-phase :meth:`extend` seconds since bootstrap.

        :attr:`extend_stats_` is overwritten by every :meth:`extend`
        call (it snapshots the last call only); this dict keeps the
        running totals across all calls — the number a long-running
        ingest loop wants.  Keys are exactly the pipeline phases
        (``signatures``/``shortlist``/``walk``/``update``/``refresh``),
        present from construction with 0.0 values.  Reset by
        :meth:`bootstrap`.
        """
        return dict(self._extend_totals)

    def _batch_signatures(self, X: np.ndarray) -> np.ndarray:
        """Signatures of a whole arrival batch (pool-chunked if parallel)."""
        assert self._hasher is not None
        if self.stream.backend == "serial":
            return self._hasher.signatures_categorical(
                X, domain_size=self._fitted_domain, absent_code=self.absent_code
            )
        pool = self._ensure_stream_pool()
        backend = self._stream_backend
        assert backend is not None
        per_chunk = -(-X.shape[0] // self.stream.chunk_items)  # ceil
        spans = chunk_ranges(X.shape[0], max(backend.n_jobs, per_chunk))
        # One shared-memory request buffer per call for process pools
        # (zero-copy wrapping for threads), released before returning.
        x_ref = backend.share_array(X)
        try:
            chunks = pool.run(_stream_signature_chunk, spans, dynamic=x_ref)
        finally:
            x_ref.release()
        return np.concatenate(chunks)

    def _require_stream_fallback(self) -> None:
        if self.stream_fallback == "error":
            raise ConfigurationError(
                "streamed item collided with nothing and "
                "stream_fallback='error'"
            )

    def _extend_segment(
        self, X_seg: np.ndarray, signatures: np.ndarray, phases: PhaseSpans
    ) -> np.ndarray:
        """Ingest one segment exactly as the push loop would.

        Shortlists against the pre-segment index state are batched;
        the only sequential dependency — a row colliding with an
        earlier row of the *same* segment, whose freshly assigned
        cluster the push loop would see in its shortlist — is resolved
        by an ordered walk over just the rows that share a band key
        inside the segment.
        """
        model = self._bootstrap_model
        assert model is not None and self._tracker is not None
        index = model.index_
        assert index is not None
        modes = self._modes
        assert modes is not None
        count = len(X_seg)

        with phases.span("shortlist", rows=count):
            keys = compute_band_keys(signatures, index.bands, index.rows)
            indptr, base_clusters = index.shortlists_for_signatures(signatures)
            lengths = np.diff(indptr)
            base_label = np.full(count, -1, dtype=np.int64)
            base_dist = np.full(count, np.inf, dtype=np.float64)
            filled = np.flatnonzero(lengths > 0)
            if filled.size:
                best_l, best_d = best_shortlisted_centroids(
                    model, X_seg[filled], base_clusters, lengths[filled], modes
                )
                base_label[filled] = best_l
                base_dist[filled] = best_d

        with phases.span("walk", rows=count):
            labels, fallbacks = self._resolve_segment_labels(
                X_seg, keys, lengths, base_label, base_dist, modes, model
            )

        with phases.span("update", rows=count):
            self._tracker.add_batch(X_seg, labels)
            index.insert_batch(signatures, labels, band_keys=keys)
        self.n_seen_ += count
        self.n_fallbacks_ += fallbacks
        self._since_refresh += count
        if self._since_refresh >= self.refresh_interval:
            with phases.span("refresh"):
                self.refresh_modes()
        return labels

    def _resolve_segment_labels(
        self,
        X_seg: np.ndarray,
        keys: np.ndarray,
        lengths: np.ndarray,
        base_label: np.ndarray,
        base_dist: np.ndarray,
        modes: np.ndarray,
        model,
    ) -> tuple[np.ndarray, int]:
        """Final labels for one segment (vectorised + collision walk)."""
        count = len(X_seg)
        bands = keys.shape[1]
        # Rows sharing a band key with another row of this segment are
        # the only ones whose shortlist the push loop would have grown
        # with intra-segment insertions.
        colliding = np.zeros(count, dtype=bool)
        duplicated_keys: list[set[int]] = []
        for j in range(bands):
            uniq, inverse, key_counts = np.unique(
                keys[:, j], return_inverse=True, return_counts=True
            )
            duplicated = key_counts > 1
            colliding |= duplicated[inverse]
            duplicated_keys.append(set(uniq[duplicated].tolist()))

        labels = np.empty(count, dtype=np.int64)
        fallbacks = 0
        plain = ~colliding
        plain_filled = np.flatnonzero(plain & (lengths > 0))
        labels[plain_filled] = base_label[plain_filled]
        plain_empty = np.flatnonzero(plain & (lengths == 0))
        if plain_empty.size:
            self._require_stream_fallback()
            fb_labels, _ = best_centroids_full_scan(
                model, X_seg[plain_empty], modes
            )
            labels[plain_empty] = fb_labels
            fallbacks += int(plain_empty.size)

        if np.any(colliding):
            # per band: duplicated key -> labels of earlier walked rows
            seen: list[dict[int, set[int]]] = [dict() for _ in range(bands)]
            for r in np.flatnonzero(colliding).tolist():
                row_keys = keys[r]
                extras: set[int] = set()
                for j in range(bands):
                    got = seen[j].get(int(row_keys[j]))
                    if got:
                        extras |= got
                if extras:
                    extra_arr = np.fromiter(
                        extras, dtype=np.int64, count=len(extras)
                    )
                    extra_arr.sort()
                    extra_d = np.count_nonzero(
                        modes[extra_arr] != X_seg[r][None, :], axis=1
                    )
                    best_pos = int(np.argmin(extra_d))
                    candidate = (float(extra_d[best_pos]), int(extra_arr[best_pos]))
                    if lengths[r]:
                        base = (float(base_dist[r]), int(base_label[r]))
                        label = candidate[1] if candidate < base else base[1]
                    else:
                        label = candidate[1]
                elif lengths[r]:
                    label = int(base_label[r])
                else:
                    self._require_stream_fallback()
                    scan = np.count_nonzero(
                        modes != X_seg[r][None, :], axis=1
                    )
                    label = int(np.argmin(scan))
                    fallbacks += 1
                labels[r] = label
                for j in range(bands):
                    key = int(row_keys[j])
                    if key in duplicated_keys[j]:
                        seen[j].setdefault(key, set()).add(label)
        return labels, fallbacks

    def refresh_modes(self) -> None:
        """Recompute modes from the incremental counts."""
        check_fitted(self)
        assert self._tracker is not None and self._modes is not None
        self._modes = self._tracker.modes(self._modes)
        self._since_refresh = 0

    # ------------------------------------------------------------------

    @property
    def cluster_sizes_(self) -> np.ndarray:
        """Items absorbed per cluster (bootstrap + streamed)."""
        check_fitted(self)
        assert self._tracker is not None
        return self._tracker.cluster_sizes.copy()

    def fitted_model(self) -> ClusterModel:
        """Export the current state as an immutable serving artifact.

        The artifact is an ``'mh-kmodes'`` :class:`~repro.api.ClusterModel`
        carrying the *current* modes and the live index — bootstrap
        items and every streamed arrival included — so a reconstructed
        model predicts exactly like this stream would assign (minus the
        insertion side effects, which belong to training).
        """
        check_fitted(self)
        assert self._bootstrap_model is not None and self._modes is not None
        index = self._bootstrap_model.index_
        state = {
            "cost": float("nan"),
            "n_iter": int(self._bootstrap_model.n_iter_),
            "converged": bool(self._bootstrap_model.converged_),
            "n_seen": int(self.n_seen_),
            "n_fallbacks": int(self.n_fallbacks_),
        }
        if self._fitted_domain is not None:
            state["fitted_domain_size"] = int(self._fitted_domain)
        return ClusterModel(
            algorithm="mh-kmodes",
            n_clusters=self.n_clusters,
            centroids=self._modes,
            lsh=self.lsh,
            engine=self.engine,
            train=self.train,
            labels=index.assignments,
            band_keys=index.band_keys,
            assignments=index.assignments,
            params={
                "absent_code": self.absent_code,
                "domain_size": self.domain_size,
                "precompute_neighbours": False,
            },
            state=state,
            metadata=self._artifact_metadata(),
        )
