"""Closed-form probabilities behind Tables I & II and Section III-C.

Three quantities, all exact under the MinHash model:

* :func:`candidate_pair_probability` — two items of Jaccard similarity
  ``s`` collide in at least one band: ``1 - (1 - s^r)^b``.
* :func:`cluster_recall_probability` — a cluster holding ``c`` items of
  similarity at least ``s`` to the query contributes at least one
  collision: ``1 - (1 - s^r)^(b·c)``.  This is the "MH-K-Modes
  probability" column of Tables I and II (the paper uses ``c = 10``).
* :func:`error_bound` — Section III-C: the probability that the *true*
  best cluster is absent from the shortlist is at most
  ``(1 - (1/(2m-1))^r)^(b·|C|)`` for items with ``m`` attributes,
  because the best cluster must contain an item agreeing on at least
  one attribute, giving Jaccard similarity at least ``1/(2m-1)``.

The paper's running example — m=100, r=1, b=25, cluster size 20 —
evaluates to 0.08, reproduced in the tests to the printed precision.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, DataValidationError
from repro.lsh.bands import band_probability, validate_bands_rows

__all__ = [
    "candidate_pair_probability",
    "cluster_recall_probability",
    "error_bound",
    "minimum_similarity",
]


def candidate_pair_probability(similarity: float, bands: int, rows: int) -> float:
    """P(two items with Jaccard ``similarity`` become a candidate pair).

    Implements ``1 - (1 - s^r)^b`` (Section III-A2).  This is the
    "Probability" column of Tables I and II.

    Examples
    --------
    >>> round(candidate_pair_probability(0.1, bands=10, rows=1), 2)
    0.65
    """
    return band_probability(similarity, bands, rows)


def cluster_recall_probability(
    similarity: float, bands: int, rows: int, cluster_size: int
) -> float:
    """P(a cluster with ``cluster_size`` similar items reaches the shortlist).

    The shortlist needs only *one* member of the cluster to collide
    (Section III-D): with ``c`` independent opportunities the recall is
    ``1 - (1 - s^r)^(b·c)``.  This is the "MH-K-Modes Probability"
    column of Tables I and II, where the paper assumes ``c = 10``.

    Examples
    --------
    >>> round(cluster_recall_probability(0.1, bands=10, rows=1, cluster_size=10), 2)
    1.0
    """
    validate_bands_rows(bands, rows)
    if cluster_size <= 0:
        raise ConfigurationError(f"cluster_size must be positive, got {cluster_size}")
    if not 0.0 <= similarity <= 1.0:
        raise DataValidationError(f"similarity must be in [0, 1], got {similarity}")
    return 1.0 - (1.0 - similarity**rows) ** (bands * cluster_size)


def minimum_similarity(n_attributes: int) -> float:
    """Worst-case Jaccard similarity between an item and its best cluster.

    Section III-C: if cluster C is the best for item X, some member of
    C must share at least one of X's ``m`` attribute values (otherwise
    the mode of C would be at distance m and C could not win).  Sharing
    one of m attribute values gives Jaccard similarity at least
    ``1 / (2m - 1)``.
    """
    if n_attributes <= 0:
        raise ConfigurationError(
            f"n_attributes must be positive, got {n_attributes}"
        )
    return 1.0 / (2 * n_attributes - 1)


def error_bound(
    n_attributes: int, bands: int, rows: int, cluster_size: int
) -> float:
    """Upper bound on P(true best cluster missing from the shortlist).

    Section III-C: ``(1 - (1/(2m-1))^r)^(b·|C|)``.  The bound shrinks
    exponentially in both the number of bands and the cluster size.

    Examples
    --------
    The paper's worked example (m=100, r=1, b=25, |C|=20):

    >>> round(error_bound(100, bands=25, rows=1, cluster_size=20), 2)
    0.08
    """
    validate_bands_rows(bands, rows)
    if cluster_size <= 0:
        raise ConfigurationError(f"cluster_size must be positive, got {cluster_size}")
    s_min = minimum_similarity(n_attributes)
    return (1.0 - s_min**rows) ** (bands * cluster_size)
