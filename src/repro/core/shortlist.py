"""Shortlist accounting, fallback policies and the full-scan kernel.

The shortlist itself is produced by
:meth:`repro.lsh.index.ClusteredLSHIndex.candidate_clusters`; this
module adds the plumbing around it:

* :class:`ShortlistAccumulator` — cheap per-iteration accounting of
  shortlist sizes, feeding the "Avg. Clusters Returned" series of
  Figures 2b, 3c, 4a, 5b, 9b and 10c;
* :func:`apply_fallback` — what to do when a shortlist comes back
  empty.  For *indexed* items this cannot happen (an item always
  collides with itself, so its current cluster is always present); it
  matters when predicting for novel items and when streaming them in;
* :func:`best_centroids_full_scan` — the vectorised resolution of the
  ``'full'`` fallback: every row against every centroid through the
  model's ``_block_distances`` kernel, with the centroid matrix
  *broadcast* (never gathered per row).  Gathering ``centroids[...]``
  blocks for an all-clusters shortlist is what made batched predict
  slower than the per-item loop on all-novel batches; broadcasting
  removes that copy entirely.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ShortlistAccumulator",
    "apply_fallback",
    "best_centroids_full_scan",
    "FALLBACK_POLICIES",
]

#: Rough element budget of one broadcast ``(rows, k, m)`` distance
#: tensor; row blocks are sliced to stay under it.
_FULL_SCAN_ELEMENT_BUDGET = 4_000_000

#: Valid fallback policies for empty shortlists on novel items.
FALLBACK_POLICIES = ("full", "error")


class ShortlistAccumulator:
    """Accumulates shortlist sizes within one iteration.

    Examples
    --------
    >>> acc = ShortlistAccumulator()
    >>> acc.add(3)
    >>> acc.add(5)
    >>> acc.mean()
    4.0
    """

    def __init__(self) -> None:
        self._total = 0
        self._count = 0
        self._max = 0

    def add(self, size: int) -> None:
        """Record one item's shortlist size."""
        self._total += size
        self._count += 1
        if size > self._max:
            self._max = size

    def add_many(self, total: int, count: int, max_size: int = 0) -> None:
        """Record a batch of shortlist sizes by aggregate."""
        self._total += total
        self._count += count
        if max_size > self._max:
            self._max = max_size

    def mean(self) -> float:
        """Mean shortlist size this iteration (nan when empty)."""
        return self._total / self._count if self._count else float("nan")

    @property
    def count(self) -> int:
        return self._count

    @property
    def max(self) -> int:
        return self._max

    def reset(self) -> None:
        """Clear the accumulator for the next iteration."""
        self._total = 0
        self._count = 0
        self._max = 0


def apply_fallback(
    shortlist: np.ndarray, n_clusters: int, policy: str
) -> np.ndarray:
    """Resolve an empty shortlist according to ``policy``.

    Parameters
    ----------
    shortlist:
        Candidate cluster ids (possibly empty).
    n_clusters:
        Total number of clusters, for the ``'full'`` policy.
    policy:
        ``'full'`` — fall back to scanning every cluster (exact, slow);
        ``'error'`` — raise, for callers that must never scan.

    Returns
    -------
    numpy.ndarray
        A non-empty array of candidate cluster ids.
    """
    if policy not in FALLBACK_POLICIES:
        raise ConfigurationError(
            f"unknown fallback policy {policy!r}; choose from {FALLBACK_POLICIES}"
        )
    if shortlist.size:
        return shortlist
    if policy == "full":
        return np.arange(n_clusters, dtype=np.int64)
    raise ConfigurationError(
        "empty shortlist for a novel item and fallback policy is 'error'"
    )


def best_centroids_full_scan(
    model, X: np.ndarray, centroids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """First-minimum centroid per row against the *full* centroid matrix.

    Scores ``X`` against every centroid with the model's vectorised
    ``_block_distances`` kernel, broadcasting the centroid matrix
    across the row block instead of gathering an explicit
    ``(rows, k, m)`` copy, and reduces with a row-wise ``argmin`` —
    ties resolve to the smallest centroid id, exactly like an
    all-clusters shortlist would.  Row blocks are sized to keep the
    broadcast distance tensor under a fixed element budget.

    Returns ``(best_label, best_distance)`` per row.
    """
    n, m = X.shape
    k = centroids.shape[0]
    best_label = np.empty(n, dtype=np.int64)
    best_distance = np.empty(n, dtype=np.float64)
    rows_at_once = max(1, _FULL_SCAN_ELEMENT_BUDGET // max(1, k * m))
    for lo in range(0, n, rows_at_once):
        hi = min(lo + rows_at_once, n)
        distances = np.asarray(
            model._block_distances(
                X[lo:hi], np.broadcast_to(centroids, (hi - lo, k, m))
            ),
            dtype=np.float64,
        )
        rows = np.arange(hi - lo)
        best_pos = np.argmin(distances, axis=1)
        best_label[lo:hi] = best_pos
        best_distance[lo:hi] = distances[rows, best_pos]
    return best_label, best_distance
