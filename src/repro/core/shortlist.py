"""Shortlist accounting and fallback policies.

The shortlist itself is produced by
:meth:`repro.lsh.index.ClusteredLSHIndex.candidate_clusters`; this
module adds the two pieces of plumbing around it:

* :class:`ShortlistAccumulator` — cheap per-iteration accounting of
  shortlist sizes, feeding the "Avg. Clusters Returned" series of
  Figures 2b, 3c, 4a, 5b, 9b and 10c;
* :func:`apply_fallback` — what to do when a shortlist comes back
  empty.  For *indexed* items this cannot happen (an item always
  collides with itself, so its current cluster is always present); it
  matters when predicting for novel items.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ShortlistAccumulator", "apply_fallback", "FALLBACK_POLICIES"]

#: Valid fallback policies for empty shortlists on novel items.
FALLBACK_POLICIES = ("full", "error")


class ShortlistAccumulator:
    """Accumulates shortlist sizes within one iteration.

    Examples
    --------
    >>> acc = ShortlistAccumulator()
    >>> acc.add(3)
    >>> acc.add(5)
    >>> acc.mean()
    4.0
    """

    def __init__(self) -> None:
        self._total = 0
        self._count = 0
        self._max = 0

    def add(self, size: int) -> None:
        """Record one item's shortlist size."""
        self._total += size
        self._count += 1
        if size > self._max:
            self._max = size

    def add_many(self, total: int, count: int, max_size: int = 0) -> None:
        """Record a batch of shortlist sizes by aggregate."""
        self._total += total
        self._count += count
        if max_size > self._max:
            self._max = max_size

    def mean(self) -> float:
        """Mean shortlist size this iteration (nan when empty)."""
        return self._total / self._count if self._count else float("nan")

    @property
    def count(self) -> int:
        return self._count

    @property
    def max(self) -> int:
        return self._max

    def reset(self) -> None:
        """Clear the accumulator for the next iteration."""
        self._total = 0
        self._count = 0
        self._max = 0


def apply_fallback(
    shortlist: np.ndarray, n_clusters: int, policy: str
) -> np.ndarray:
    """Resolve an empty shortlist according to ``policy``.

    Parameters
    ----------
    shortlist:
        Candidate cluster ids (possibly empty).
    n_clusters:
        Total number of clusters, for the ``'full'`` policy.
    policy:
        ``'full'`` — fall back to scanning every cluster (exact, slow);
        ``'error'`` — raise, for callers that must never scan.

    Returns
    -------
    numpy.ndarray
        A non-empty array of candidate cluster ids.
    """
    if policy not in FALLBACK_POLICIES:
        raise ConfigurationError(
            f"unknown fallback policy {policy!r}; choose from {FALLBACK_POLICIES}"
        )
    if shortlist.size:
        return shortlist
    if policy == "full":
        return np.arange(n_clusters, dtype=np.int64)
    raise ConfigurationError(
        "empty shortlist for a novel item and fallback policy is 'error'"
    )
