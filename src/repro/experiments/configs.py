"""One config per paper experiment, scaled to laptop size.

Scaling rationale (documented per experiment in EXPERIMENTS.md): the
paper's runs took hundreds of hours on a 2016 Xeon; the claims its
figures support are *relative* — MH-K-Modes vs K-Modes per-iteration
time, shortlist size vs k, convergence speed, and how these trends
move with n, k and m.  Those relations survive a proportional
shrinking of (n, k, m) because both algorithms shrink identically.
We keep the paper's item:cluster ratio (90 000 : 20 000 = 4.5 : 1) and
its 2× / proportional steps between experiments.

| figure | paper (n × m × k)      | here (n × m × k)   |
|--------|------------------------|--------------------|
| Fig 2  | 90 000 × 100 × 20 000  | 4 000 × 60 × 800   |
| Fig 3  | 90 000 × 100 × 40 000  | 4 000 × 60 × 1 600 |
| Fig 4  | 250 000 × 100 × 20 000 | 11 000 × 60 × 800  |
| Fig 5  | 90 000 × 200 × 20 000  | 4 000 × 120 × 800  |
| Fig 6c | + 90 000 × 400 × 20 000| + 4 000 × 240 × 800|
| Fig 9  | 81 036 × 382 × 2 916 (tf-idf 0.7) | 4 000 q × ~250 × 300 |
| Fig 10 | 157 602 × 2 881 × 2 916 (tf-idf 0.3) | 6 000 q × ~1 200 × 300 |
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "VariantSpec",
    "SyntheticConfig",
    "YahooConfig",
    "baseline",
    "mh",
    "FIG2",
    "FIG3",
    "FIG4",
    "FIG5",
    "FIG5_XL",
    "FIG9",
    "FIG10",
    "ALL_SYNTHETIC_CONFIGS",
    "ALL_YAHOO_CONFIGS",
    "EXPERIMENTS",
]


@dataclass(frozen=True)
class VariantSpec:
    """One algorithm variant in a comparison.

    ``bands is None`` denotes the exhaustive baseline (K-Modes); any
    other value denotes MH-K-Modes with that banding.
    """

    bands: int | None
    rows: int | None

    @property
    def is_baseline(self) -> bool:
        return self.bands is None

    @property
    def label(self) -> str:
        if self.is_baseline:
            return "K-Modes"
        return f"MH-K-Modes {self.bands}b {self.rows}r"


def baseline() -> VariantSpec:
    """The exhaustive K-Modes variant."""
    return VariantSpec(bands=None, rows=None)


def mh(bands: int, rows: int) -> VariantSpec:
    """An MH-K-Modes variant with the given banding."""
    return VariantSpec(bands=bands, rows=rows)


@dataclass(frozen=True)
class SyntheticConfig:
    """A datgen-style synthetic experiment (Figures 2-8).

    Attributes mirror :class:`repro.data.datgen.RuleBasedGenerator`
    plus the algorithm variants to compare.
    """

    exp_id: str
    description: str
    n_items: int
    n_attributes: int
    n_clusters: int
    variants: tuple[VariantSpec, ...]
    domain_size: int = 40_000
    rule_width_fraction: tuple[float, float] = (0.4, 0.8)
    # A mild corruption of rule attributes keeps items contested between
    # clusters so the runs converge over several iterations, like the
    # paper's (K-Modes: 12 iterations in Figure 2); noise-free rule data
    # converges in 2-3 iterations at laptop scale and nothing amortises.
    noise_rate: float = 0.1
    max_iter: int = 12
    seed: int = 2016
    # Engine knobs for the MH variants ('serial' reproduces the paper's
    # online loop; parallel backends run batch passes).
    backend: str = "serial"
    n_jobs: int | None = None

    def scaled(self, **overrides) -> "SyntheticConfig":
        """A copy with some fields replaced (for scaling studies)."""
        from dataclasses import replace

        return replace(self, **overrides)


@dataclass(frozen=True)
class YahooConfig:
    """A Yahoo!-Answers-style experiment (Figures 9-10)."""

    exp_id: str
    description: str
    n_questions: int
    n_topics: int
    tfidf_threshold: float
    variants: tuple[VariantSpec, ...]
    max_iter: int = 10
    seed: int = 2016
    backend: str = "serial"
    n_jobs: int | None = None

    def scaled(self, **overrides) -> "YahooConfig":
        """A copy with some fields replaced (for CLI overrides)."""
        from dataclasses import replace

        return replace(self, **overrides)


# ----------------------------------------------------------------------
# the paper's experiments
# ----------------------------------------------------------------------

FIG2 = SyntheticConfig(
    exp_id="fig2",
    description=(
        "Varying clusters, base case (paper: 90k items, 100 attrs, 20k "
        "clusters; Figures 2a-2e, 7a, 8a)"
    ),
    n_items=4_000,
    n_attributes=60,
    n_clusters=800,
    variants=(mh(20, 2), mh(20, 5), mh(50, 5), baseline()),
)

FIG3 = SyntheticConfig(
    exp_id="fig3",
    description=(
        "Doubled clusters (paper: 90k items, 100 attrs, 40k clusters; "
        "Figures 3a-3d, 7d, 8d)"
    ),
    n_items=4_000,
    n_attributes=60,
    n_clusters=1_600,
    variants=(mh(20, 2), mh(20, 5), mh(50, 5), baseline()),
)

FIG4 = SyntheticConfig(
    exp_id="fig4",
    description=(
        "More items (paper: 250k items, 100 attrs, 20k clusters; "
        "Figures 4a-4c, 7e, 8e)"
    ),
    n_items=11_000,
    n_attributes=60,
    n_clusters=800,
    variants=(mh(1, 1), mh(20, 5), baseline()),
)

FIG5 = SyntheticConfig(
    exp_id="fig5",
    description=(
        "Doubled attributes (paper: 90k items, 200 attrs, 20k clusters; "
        "Figures 5a-5b, 7b, 8b)"
    ),
    n_items=4_000,
    n_attributes=120,
    n_clusters=800,
    variants=(mh(20, 5), mh(50, 5), baseline()),
)

FIG5_XL = SyntheticConfig(
    exp_id="fig5xl",
    description=(
        "Quadrupled attributes (paper: 90k items, 400 attrs, 20k "
        "clusters; Figures 6c, 7c, 8c)"
    ),
    n_items=4_000,
    n_attributes=240,
    n_clusters=800,
    variants=(mh(20, 5), mh(50, 5), baseline()),
)

FIG9 = YahooConfig(
    exp_id="fig9",
    description=(
        "Yahoo! Answers, TF-IDF threshold 0.7 (paper: 81 036 questions, "
        "382 attrs, 2 916 topics; Figures 9a-9e)"
    ),
    n_questions=4_000,
    n_topics=300,
    tfidf_threshold=0.7,
    variants=(mh(1, 1), baseline()),
    max_iter=8,
)

FIG10 = YahooConfig(
    exp_id="fig10",
    description=(
        "Yahoo! Answers, TF-IDF threshold 0.3 (paper: 157 602 questions, "
        "2 881 attrs, 2 916 topics, max 10 iterations; Figures 10a-10d)"
    ),
    n_questions=5_000,
    n_topics=300,
    tfidf_threshold=0.3,
    variants=(mh(1, 1), mh(20, 5), mh(50, 5), baseline()),
    max_iter=10,
)

#: The five synthetic datasets of Section IV-A (Figures 7 and 8 iterate
#: over exactly these).
ALL_SYNTHETIC_CONFIGS: tuple[SyntheticConfig, ...] = (
    FIG2,
    FIG3,
    FIG4,
    FIG5,
    FIG5_XL,
)

ALL_YAHOO_CONFIGS: tuple[YahooConfig, ...] = (FIG9, FIG10)

#: Master index: experiment id → config, for CLI and benchmarks.
EXPERIMENTS: dict[str, SyntheticConfig | YahooConfig] = {
    config.exp_id: config
    for config in (*ALL_SYNTHETIC_CONFIGS, *ALL_YAHOO_CONFIGS)
}
