"""Executes experiment configs under the paper's protocol.

Protocol details the paper specifies and this runner honours:

* **identical initial centroids across variants** (Section IV-A: "for
  each experiment ... the same initial centroid points were selected");
* random-item initialisation;
* per-iteration series (time, moves, shortlist size) plus totals and
  purity recorded for every run;
* the MH variants' one-off indexing cost is charged to their total
  time (the paper's "initial extra step").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.specs import EngineSpec, LSHSpec, TrainSpec
from repro.core.mh_kmodes import MHKModes
from repro.data.datgen import RuleBasedGenerator
from repro.data.dataset import CategoricalDataset
from repro.data.yahoo import YahooAnswersSynthesizer, corpus_to_dataset
from repro.experiments.configs import SyntheticConfig, VariantSpec, YahooConfig
from repro.instrumentation import RunStats
from repro.kmodes.kmodes import KModes
from repro.metrics.purity import cluster_purity
from repro.metrics.external import normalized_mutual_information

__all__ = [
    "RunResult",
    "ComparisonResult",
    "run_comparison",
    "run_synthetic_experiment",
    "run_yahoo_experiment",
    "scaling_study",
]


@dataclass
class RunResult:
    """Outcome of one algorithm variant on one dataset."""

    label: str
    stats: RunStats
    labels: np.ndarray
    cost: float
    purity: float
    nmi: float

    @property
    def total_time_s(self) -> float:
        return self.stats.total_time_s

    @property
    def n_iterations(self) -> int:
        return self.stats.n_iterations

    def summary(self) -> dict[str, Any]:
        """One row for the comparison summary table."""
        return {
            "algorithm": self.label,
            "iterations": self.n_iterations,
            "converged": self.stats.converged,
            "setup_s": round(self.stats.setup_s, 4),
            "mean_iter_s": round(self.stats.mean_iteration_s, 4),
            "total_s": round(self.total_time_s, 4),
            "mean_shortlist": (
                round(float(np.nanmean(self.stats.shortlist_sizes)), 2)
                if self.stats.shortlist_sizes
                else float("nan")
            ),
            "purity": round(self.purity, 4),
            "nmi": round(self.nmi, 4),
            "cost": self.cost,
        }


@dataclass
class ComparisonResult:
    """All variants' results on one dataset, plus dataset facts."""

    exp_id: str
    dataset_info: dict[str, Any]
    results: dict[str, RunResult] = field(default_factory=dict)

    @property
    def baseline(self) -> RunResult:
        """The exhaustive K-Modes run (raises if absent)."""
        for result in self.results.values():
            if result.label == "K-Modes":
                return result
        raise KeyError("no K-Modes baseline in this comparison")

    def speedup(self, label: str) -> float:
        """Total-time speedup of a variant relative to the baseline."""
        return self.baseline.total_time_s / self.results[label].total_time_s

    def iteration_speedup(self, label: str) -> float:
        """Mean per-iteration speedup relative to the baseline."""
        return (
            self.baseline.stats.mean_iteration_s
            / self.results[label].stats.mean_iteration_s
        )


def _fixed_initial_modes(
    X: np.ndarray, n_clusters: int, seed: int
) -> np.ndarray:
    """Random-item initial modes, shared across all variants."""
    rng = np.random.default_rng(seed)
    return X[rng.choice(X.shape[0], size=n_clusters, replace=False)].copy()


def run_comparison(
    dataset: CategoricalDataset,
    n_clusters: int,
    variants: tuple[VariantSpec, ...],
    max_iter: int,
    seed: int,
    absent_code: int | None = None,
    exp_id: str = "adhoc",
    backend: str = "serial",
    n_jobs: int | None = None,
) -> ComparisonResult:
    """Run every variant on ``dataset`` from identical initial modes.

    Parameters
    ----------
    dataset:
        Items plus ground-truth labels (for purity / NMI).
    n_clusters:
        k for every variant.
    variants:
        Algorithm variants (see :func:`repro.experiments.configs.mh`
        and :func:`~repro.experiments.configs.baseline`).
    max_iter:
        Iteration cap for every variant.
    seed:
        Seeds both the shared initialisation and the MH hashing.
    absent_code:
        Forwarded to MH-K-Modes (presence filtering); the Yahoo
        pipeline uses 0.
    exp_id:
        Identifier recorded in the result.
    backend, n_jobs:
        Engine knobs for the MH variants (the exhaustive baseline is
        always in-process).  ``'serial'`` reproduces the paper's online
        protocol; parallel backends run batch passes.
    """
    initial = _fixed_initial_modes(dataset.X, n_clusters, seed)
    comparison = ComparisonResult(exp_id=exp_id, dataset_info=dataset.describe())
    for variant in variants:
        if variant.is_baseline:
            model: KModes | MHKModes = KModes(
                n_clusters=n_clusters, max_iter=max_iter, seed=seed
            )
            model.fit(dataset.X, initial_modes=initial)
        else:
            assert variant.bands is not None and variant.rows is not None
            model = MHKModes(
                n_clusters=n_clusters,
                lsh=LSHSpec(bands=variant.bands, rows=variant.rows, seed=seed),
                engine=EngineSpec(backend=backend, n_jobs=n_jobs),
                train=TrainSpec(max_iter=max_iter),
                absent_code=absent_code,
            )
            model.fit(dataset.X, initial_centroids=initial)
        assert model.labels_ is not None and model.stats_ is not None
        comparison.results[variant.label] = RunResult(
            label=variant.label,
            stats=model.stats_,
            labels=model.labels_,
            cost=float(model.cost_),
            purity=cluster_purity(model.labels_, dataset.labels),
            nmi=normalized_mutual_information(model.labels_, dataset.labels),
        )
    return comparison


def synthetic_dataset(config: SyntheticConfig) -> CategoricalDataset:
    """Materialise the datgen-style dataset of a synthetic config."""
    generator = RuleBasedGenerator(
        n_clusters=config.n_clusters,
        n_attributes=config.n_attributes,
        domain_size=config.domain_size,
        rule_width_fraction=config.rule_width_fraction,
        noise_rate=config.noise_rate,
        seed=config.seed,
    )
    return generator.generate(config.n_items)


def yahoo_dataset(config: YahooConfig) -> CategoricalDataset:
    """Materialise the Yahoo-style dataset of a text config."""
    synthesizer = YahooAnswersSynthesizer(
        n_topics=config.n_topics, seed=config.seed
    )
    corpus = synthesizer.generate(config.n_questions)
    return corpus_to_dataset(corpus, tfidf_threshold=config.tfidf_threshold)


def run_synthetic_experiment(config: SyntheticConfig) -> ComparisonResult:
    """Generate the config's dataset and run all its variants."""
    dataset = synthetic_dataset(config)
    return run_comparison(
        dataset,
        n_clusters=config.n_clusters,
        variants=config.variants,
        max_iter=config.max_iter,
        seed=config.seed,
        exp_id=config.exp_id,
        backend=config.backend,
        n_jobs=config.n_jobs,
    )


def run_yahoo_experiment(config: YahooConfig) -> ComparisonResult:
    """Generate the config's corpus, run the Section IV-B pipeline."""
    dataset = yahoo_dataset(config)
    return run_comparison(
        dataset,
        n_clusters=config.n_topics,
        variants=config.variants,
        max_iter=config.max_iter,
        seed=config.seed,
        absent_code=0,
        exp_id=config.exp_id,
        backend=config.backend,
        n_jobs=config.n_jobs,
    )


def scaling_study(
    base: SyntheticConfig,
    axis: str,
    values: tuple[int, ...],
    variants: tuple[VariantSpec, ...] | None = None,
) -> dict[int, ComparisonResult]:
    """Total-time growth along one data axis (Figure 6).

    Parameters
    ----------
    base:
        Config providing all other parameters.
    axis:
        ``'n_items'``, ``'n_clusters'`` or ``'n_attributes'``.
    values:
        Axis values to sweep (e.g. ``(4000, 11000)`` for Figure 6a).
    variants:
        Override the variants (Figure 6 uses 20b 5r vs baseline).

    Returns
    -------
    dict[int, ComparisonResult]
        Axis value → comparison, in sweep order.
    """
    if axis not in ("n_items", "n_clusters", "n_attributes"):
        raise ValueError(
            "axis must be 'n_items', 'n_clusters' or 'n_attributes', "
            f"got {axis!r}"
        )
    out: dict[int, ComparisonResult] = {}
    for value in values:
        config = base.scaled(
            **{axis: value, "exp_id": f"{base.exp_id}-{axis}={value}"}
        )
        if variants is not None:
            config = config.scaled(variants=variants)
        out[value] = run_synthetic_experiment(config)
    return out
