"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.experiments.configs` — one config per experiment, scaled
  from the paper's multi-day testbed runs to laptop size while keeping
  the item : cluster : attribute ratios (the claims under test are
  shape claims — who wins, by what factor, which trends hold);
* :mod:`repro.experiments.runner` — executes a config: same initial
  centroids across all algorithm variants (the paper's protocol),
  returning per-variant :class:`~repro.experiments.runner.RunResult`;
* :mod:`repro.experiments.report` — renders the paper-style series
  and summary tables as text.
"""

from repro.experiments.configs import (
    ALL_SYNTHETIC_CONFIGS,
    ALL_YAHOO_CONFIGS,
    EXPERIMENTS,
    FIG2,
    FIG3,
    FIG4,
    FIG5,
    FIG5_XL,
    FIG9,
    FIG10,
    SyntheticConfig,
    VariantSpec,
    YahooConfig,
    baseline,
    mh,
)
from repro.experiments.runner import (
    ComparisonResult,
    RunResult,
    run_comparison,
    run_synthetic_experiment,
    run_yahoo_experiment,
    scaling_study,
)
from repro.experiments.report import (
    render_comparison_summary,
    render_probability_table,
    render_series_table,
)

__all__ = [
    "VariantSpec",
    "SyntheticConfig",
    "YahooConfig",
    "baseline",
    "mh",
    "EXPERIMENTS",
    "FIG2",
    "FIG3",
    "FIG4",
    "FIG5",
    "FIG5_XL",
    "FIG9",
    "FIG10",
    "ALL_SYNTHETIC_CONFIGS",
    "ALL_YAHOO_CONFIGS",
    "RunResult",
    "ComparisonResult",
    "run_comparison",
    "run_synthetic_experiment",
    "run_yahoo_experiment",
    "scaling_study",
    "render_series_table",
    "render_comparison_summary",
    "render_probability_table",
]
