"""Plain-text rendering of the paper-style result tables.

Every figure of the paper is a line or bar chart; on a terminal the
same information reads best as aligned columns.  Three renderers cover
the three shapes that occur:

* :func:`render_series_table` — per-iteration series (time, shortlist
  size, moves), one column per algorithm variant — Figures 2-5, 9, 10;
* :func:`render_comparison_summary` — one row per variant with totals,
  speedups and purity — Figures 6-8 and the headline claims;
* :func:`render_probability_table` — the analytic Tables I and II.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.experiments.runner import ComparisonResult

__all__ = [
    "render_series_table",
    "render_comparison_summary",
    "render_probability_table",
    "format_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Align ``rows`` under ``headers`` with a separator line."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


_SERIES_FIELDS = {
    "duration_s": ("Time per iteration (s)", "{:.3f}"),
    "moves": ("Moves per iteration", "{:d}"),
    "mean_shortlist": ("Avg. clusters returned", "{:.2f}"),
    "cost": ("Cost P(W,Q)", "{:.0f}"),
}


def render_series_table(comparison: ComparisonResult, fieldname: str) -> str:
    """Per-iteration series of every variant, iterations as rows.

    Parameters
    ----------
    comparison:
        A finished experiment.
    fieldname:
        One of ``'duration_s'``, ``'moves'``, ``'mean_shortlist'``,
        ``'cost'`` — matching the paper's y-axes.
    """
    if fieldname not in _SERIES_FIELDS:
        raise ValueError(
            f"unknown series field {fieldname!r}; choose from "
            f"{sorted(_SERIES_FIELDS)}"
        )
    title, fmt = _SERIES_FIELDS[fieldname]
    labels = list(comparison.results)
    longest = max(
        result.stats.n_iterations for result in comparison.results.values()
    )
    rows = []
    for iteration in range(longest):
        row: list[Any] = [iteration + 1]
        for label in labels:
            iterations = comparison.results[label].stats.iterations
            if iteration < len(iterations):
                value = getattr(iterations[iteration], fieldname)
                if fieldname == "moves":
                    row.append(fmt.format(int(value)))
                else:
                    row.append(fmt.format(value))
            else:
                row.append("-")  # this variant converged earlier
        rows.append(row)
    header = [f"{comparison.exp_id}: {title}"]
    return (
        header[0]
        + "\n"
        + format_table(["iter"] + labels, rows)
    )


def render_comparison_summary(comparison: ComparisonResult) -> str:
    """One row per variant: totals, speedup vs baseline, purity, NMI."""
    try:
        baseline_total = comparison.baseline.total_time_s
        baseline_iter = comparison.baseline.stats.mean_iteration_s
    except KeyError:
        baseline_total = float("nan")
        baseline_iter = float("nan")
    rows = []
    for result in comparison.results.values():
        summary = result.summary()
        speedup_total = (
            baseline_total / result.total_time_s if result.total_time_s else 0.0
        )
        speedup_iter = (
            baseline_iter / result.stats.mean_iteration_s
            if result.stats.mean_iteration_s
            else 0.0
        )
        rows.append(
            [
                summary["algorithm"],
                summary["iterations"],
                "yes" if summary["converged"] else "no",
                f"{summary['setup_s']:.3f}",
                f"{summary['mean_iter_s']:.3f}",
                f"{summary['total_s']:.3f}",
                f"{speedup_total:.2f}x",
                f"{speedup_iter:.2f}x",
                f"{summary['mean_shortlist']:.2f}",
                f"{summary['purity']:.3f}",
                f"{summary['nmi']:.3f}",
            ]
        )
    info = comparison.dataset_info
    title = (
        f"{comparison.exp_id}: n={info.get('n_items')} "
        f"m={info.get('n_attributes')} classes={info.get('n_classes')}"
    )
    return (
        title
        + "\n"
        + format_table(
            [
                "algorithm",
                "iters",
                "conv",
                "setup_s",
                "iter_s",
                "total_s",
                "speedup",
                "iter_speedup",
                "shortlist",
                "purity",
                "nmi",
            ],
            rows,
        )
    )


def render_probability_table(table: list[dict[str, float]], title: str) -> str:
    """Render a Table I / Table II probability grid."""
    rows = [
        [
            int(entry["bands"]),
            f"{entry['similarity']:g}",
            f"{entry['pair_probability']:.4g}",
            f"{entry['mh_kmodes_probability']:.4g}",
        ]
        for entry in table
    ]
    return (
        title
        + "\n"
        + format_table(
            ["Bands", "Jaccard-similarity", "Probability", "MH-K-Modes Probability"],
            rows,
        )
    )
