"""Clustering evaluation metrics.

The paper evaluates with **cluster purity** (Figures 8, 9e); this
package implements it from scratch along with the standard external
metrics (NMI, ARI, homogeneity/completeness/V-measure) that a
downstream user of the library would expect, plus the Jaccard
similarity that underpins MinHash.
"""

from repro.metrics.external import (
    adjusted_rand_index,
    completeness,
    contingency_matrix,
    homogeneity,
    normalized_mutual_information,
    v_measure,
)
from repro.metrics.jaccard import (
    jaccard_similarity,
    jaccard_similarity_binary,
    pairwise_jaccard,
)
from repro.metrics.purity import cluster_purity, per_cluster_purity

__all__ = [
    "cluster_purity",
    "per_cluster_purity",
    "contingency_matrix",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "homogeneity",
    "completeness",
    "v_measure",
    "jaccard_similarity",
    "jaccard_similarity_binary",
    "pairwise_jaccard",
]
