"""Jaccard similarity — the measure MinHash approximates (Equation 6).

Three entry points cover the library's data shapes: Python sets,
binary presence vectors, and ragged :class:`~repro.lsh.tokens.TokenSets`
collections (pairwise).
"""

from __future__ import annotations

from collections.abc import Collection

import numpy as np

from repro.exceptions import DataValidationError
from repro.lsh.tokens import TokenSets

__all__ = ["jaccard_similarity", "jaccard_similarity_binary", "pairwise_jaccard"]


def jaccard_similarity(a: Collection, b: Collection) -> float:
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` of two collections.

    Both collections are treated as sets (duplicates ignored).  The
    similarity of two empty sets is defined as 1.0, matching the
    convention used by the MinHash sentinel signature.

    Examples
    --------
    >>> jaccard_similarity({1, 2, 3}, {2, 3, 4})
    0.5
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


def jaccard_similarity_binary(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two 0/1 presence vectors.

    Matches the paper's Yahoo! Answers treatment: only *present*
    features participate, so shared absences contribute nothing.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise DataValidationError(
            f"expected two 1-D vectors of equal length, got {a.shape} and {b.shape}"
        )
    a_on = a != 0
    b_on = b != 0
    union = np.logical_or(a_on, b_on).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(a_on, b_on).sum() / union)


def pairwise_jaccard(token_sets: TokenSets) -> np.ndarray:
    """Exact pairwise Jaccard matrix of a token collection.

    O(n² · set size); intended for validation and tests, not for the
    large-scale path (that is what MinHash is for).

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` symmetric float matrix with unit diagonal.
    """
    n = len(token_sets)
    sets = [token_sets.row_set(i) for i in range(n)]
    out = np.ones((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            sim = jaccard_similarity(sets[i], sets[j])
            out[i, j] = sim
            out[j, i] = sim
    return out
