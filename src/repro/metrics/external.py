"""External clustering metrics built on the contingency matrix.

Implemented from their textbook definitions (no sklearn dependency):
normalized mutual information, adjusted Rand index, and the
homogeneity / completeness / V-measure family.  These complement the
paper's purity metric — purity alone cannot penalise shattering one
class across clusters, so the extra metrics are what a careful user
would reach for when comparing MH-K-Modes against exact K-Modes.
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb

from repro.exceptions import DataValidationError

__all__ = [
    "contingency_matrix",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "homogeneity",
    "completeness",
    "v_measure",
]


def contingency_matrix(labels: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Co-occurrence counts between predicted clusters and true classes.

    Returns
    -------
    numpy.ndarray
        ``(n_clusters, n_classes)`` integer matrix ``C`` with
        ``C[i, j]`` the number of items in cluster ``i`` and class ``j``.
    """
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.ndim != 1 or labels.shape != truth.shape:
        raise DataValidationError("labels and truth must be equal-length 1-D arrays")
    if labels.size == 0:
        raise DataValidationError("cannot build a contingency matrix from no items")
    _, label_codes = np.unique(labels, return_inverse=True)
    _, truth_codes = np.unique(truth, return_inverse=True)
    n_labels = label_codes.max() + 1
    n_truth = truth_codes.max() + 1
    return np.bincount(
        label_codes * n_truth + truth_codes, minlength=n_labels * n_truth
    ).reshape(n_labels, n_truth)


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


def _mutual_information(joint: np.ndarray) -> float:
    """Mutual information (nats) of a joint count matrix."""
    n = joint.sum()
    if n == 0:
        return 0.0
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    nz = joint > 0
    p_joint = joint[nz] / n
    p_indep = (row @ col)[nz] / (n * n)
    return float((p_joint * np.log(p_joint / p_indep)).sum())


def normalized_mutual_information(labels: np.ndarray, truth: np.ndarray) -> float:
    """NMI with arithmetic-mean normalisation, in ``[0, 1]``.

    ``NMI = 2·I(L; T) / (H(L) + H(T))``; defined as 1.0 when both
    partitions are single-cluster (zero entropy on both sides).
    """
    joint = contingency_matrix(labels, truth)
    h_labels = _entropy(joint.sum(axis=1))
    h_truth = _entropy(joint.sum(axis=0))
    if h_labels == 0.0 and h_truth == 0.0:
        return 1.0
    if h_labels == 0.0 or h_truth == 0.0:
        return 0.0
    mi = _mutual_information(joint)
    return float(np.clip(2.0 * mi / (h_labels + h_truth), 0.0, 1.0))


def adjusted_rand_index(labels: np.ndarray, truth: np.ndarray) -> float:
    """Adjusted Rand index (chance-corrected pair-counting agreement).

    1.0 for identical partitions, ≈0 for random labellings, can be
    negative for adversarial ones.
    """
    joint = contingency_matrix(labels, truth)
    n = joint.sum()
    sum_cells = comb(joint, 2).sum()
    sum_rows = comb(joint.sum(axis=1), 2).sum()
    sum_cols = comb(joint.sum(axis=0), 2).sum()
    n_pairs = comb(n, 2)
    if n_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / n_pairs
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_cells - expected) / (max_index - expected))


def homogeneity(labels: np.ndarray, truth: np.ndarray) -> float:
    """1 minus the conditional entropy of classes given clusters.

    1.0 when every cluster contains members of a single class.
    """
    joint = contingency_matrix(labels, truth)
    h_truth = _entropy(joint.sum(axis=0))
    if h_truth == 0.0:
        return 1.0
    h_truth_given_labels = _conditional_entropy(joint)
    return float(1.0 - h_truth_given_labels / h_truth)


def completeness(labels: np.ndarray, truth: np.ndarray) -> float:
    """1 minus the conditional entropy of clusters given classes.

    1.0 when all members of a class land in the same cluster.
    """
    return homogeneity(truth, labels)


def v_measure(labels: np.ndarray, truth: np.ndarray) -> float:
    """Harmonic mean of homogeneity and completeness."""
    h = homogeneity(labels, truth)
    c = completeness(labels, truth)
    if h + c == 0.0:
        return 0.0
    return float(2.0 * h * c / (h + c))


def _conditional_entropy(joint: np.ndarray) -> float:
    """H(columns | rows) of a joint count matrix, in nats."""
    n = joint.sum()
    if n == 0:
        return 0.0
    row_totals = joint.sum(axis=1, keepdims=True)
    nz = joint > 0
    p_joint = joint[nz] / n
    p_cond = (joint / np.maximum(row_totals, 1))[nz]
    return float(-(p_joint * np.log(p_cond)).sum())
