"""Cluster purity — the paper's quality metric (Figures 8 and 9e).

Purity assigns each cluster to its majority ground-truth class and
measures the fraction of items that land in their cluster's majority
class:

    purity = (1/n) * Σ_clusters max_class |cluster ∩ class|

Purity is 1.0 for a perfect clustering and approaches the largest
class's prevalence for a random one.  Note that purity does not
penalise splitting one class across many clusters, which is why the
paper can report meaningful values with k in the tens of thousands.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError

__all__ = ["cluster_purity", "per_cluster_purity"]


def _validate_label_pair(labels: np.ndarray, truth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.ndim != 1 or truth.ndim != 1:
        raise DataValidationError("labels and truth must be 1-D arrays")
    if labels.shape != truth.shape:
        raise DataValidationError(
            f"labels ({labels.shape}) and truth ({truth.shape}) differ in length"
        )
    if labels.size == 0:
        raise DataValidationError("cannot score an empty labelling")
    return labels, truth


def cluster_purity(labels: np.ndarray, truth: np.ndarray) -> float:
    """Overall purity of a clustering against ground-truth classes.

    Parameters
    ----------
    labels:
        Predicted cluster id per item.
    truth:
        Ground-truth class per item.

    Returns
    -------
    float
        Purity in ``(0, 1]``.

    Examples
    --------
    >>> cluster_purity([0, 0, 1, 1], [5, 5, 6, 6])
    1.0
    >>> cluster_purity([0, 0, 0, 0], [5, 5, 6, 6])
    0.5
    """
    labels, truth = _validate_label_pair(labels, truth)
    _, label_codes = np.unique(labels, return_inverse=True)
    _, truth_codes = np.unique(truth, return_inverse=True)
    n_labels = label_codes.max() + 1
    n_truth = truth_codes.max() + 1
    # Count co-occurrences through a flattened 2-D histogram; majority
    # class per cluster is then a reshaped row-max.
    joint = np.bincount(
        label_codes * n_truth + truth_codes, minlength=n_labels * n_truth
    ).reshape(n_labels, n_truth)
    return float(joint.max(axis=1).sum() / labels.size)


def per_cluster_purity(labels: np.ndarray, truth: np.ndarray) -> dict[int, float]:
    """Purity of each individual cluster.

    Returns a mapping from original cluster label to the fraction of
    that cluster's items belonging to its majority class.  Useful for
    diagnosing which clusters an accelerated run got wrong.
    """
    labels, truth = _validate_label_pair(labels, truth)
    unique_labels, label_codes = np.unique(labels, return_inverse=True)
    _, truth_codes = np.unique(truth, return_inverse=True)
    n_labels = len(unique_labels)
    n_truth = truth_codes.max() + 1
    joint = np.bincount(
        label_codes * n_truth + truth_codes, minlength=n_labels * n_truth
    ).reshape(n_labels, n_truth)
    sizes = joint.sum(axis=1)
    return {
        int(unique_labels[i]): float(joint[i].max() / sizes[i])
        for i in range(n_labels)
        if sizes[i] > 0
    }
