"""On-demand C build for the compiled kernels.

``repro`` ships :mod:`repro.kernels` as plain C source
(``_kernels.c``) rather than a prebuilt extension, so the default
install stays pure-NumPy and nothing at pip time needs a toolchain.
The first time the compiled backend is selected, this module compiles
the source with the system C compiler into a content-addressed shared
library under a cache directory and loads it with :mod:`ctypes`:

* the cache key is the SHA-256 of the source, so editing the kernels
  invalidates stale builds and concurrent processes (worker pools!)
  converge on one artifact;
* the build lands via an atomic rename — racing processes may both
  compile, but the loaded library is always complete;
* OpenMP is attempted first and silently dropped when the compiler
  lacks it (kernel results are thread-count independent);
* any failure (no compiler, sandboxed tmpdir, bad flags) raises
  :class:`KernelBuildError`, which the selector in
  :mod:`repro.kernels` turns into the NumPy fallback plus one warning.

``ctypes`` releases the GIL for the duration of each call, and nothing
ctypes-owned is ever attached to picklable objects — estimators and
pool kernels reference the compiled functions only through the
module-level wrappers in :mod:`repro.kernels`, which re-resolve in
every process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["KernelBuildError", "load_compiled", "build_cache_dir"]

_SOURCE_PATH = Path(__file__).with_name("_kernels.c")

#: Flag sets tried in order; the first successful compile wins.
_FLAG_SETS = (
    ("-O3", "-fPIC", "-shared", "-fopenmp"),
    ("-O3", "-fPIC", "-shared"),
)

_I64 = ctypes.POINTER(ctypes.c_int64)


class KernelBuildError(RuntimeError):
    """The compiled backend could not be built or loaded."""


def build_cache_dir() -> Path:
    """Where compiled kernel libraries live (override:
    ``REPRO_KERNELS_CACHE``)."""
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / f"repro-kernels-py{sys.version_info[0]}{sys.version_info[1]}"


def _source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def _compiler() -> str:
    return os.environ.get("CC", "cc")


def _compile(source_path: Path, target: Path) -> None:
    """Compile ``source_path`` into ``target`` (atomic via rename)."""
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    errors = []
    for flags in _FLAG_SETS:
        command = [_compiler(), *flags, str(source_path), "-o", str(scratch)]
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            errors.append(f"{' '.join(command)}: {exc}")
            continue
        if result.returncode == 0:
            os.replace(scratch, target)
            return
        errors.append(
            f"{' '.join(command)}: exit {result.returncode}: "
            f"{result.stderr.strip()[:500]}"
        )
    if scratch.exists():  # pragma: no cover - best-effort cleanup
        scratch.unlink(missing_ok=True)
    raise KernelBuildError(
        "could not compile the hot-path kernels; tried:\n  "
        + "\n  ".join(errors)
    )


def _bind(library: ctypes.CDLL) -> ctypes.CDLL:
    """Declare the two entry points' signatures (all int64 scalars/ptrs)."""
    try:
        signatures = library.repro_minhash_signatures
        counts = library.repro_count_update
    except AttributeError as exc:  # pragma: no cover - corrupt artifact
        raise KernelBuildError(f"compiled library misses a symbol: {exc}")
    signatures.restype = None
    signatures.argtypes = [
        ctypes.c_int64, ctypes.c_int64, _I64, _I64, _I64, _I64,
        ctypes.c_int64, _I64,
    ]
    counts.restype = None
    counts.argtypes = [
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _I64, _I64, _I64, _I64, _I64,
    ]
    return library


def load_compiled() -> ctypes.CDLL:
    """Compile (once per source hash per machine) and load the library.

    Raises :class:`KernelBuildError` on any failure; never leaves a
    partial artifact behind.
    """
    try:
        source = _SOURCE_PATH.read_text(encoding="utf-8")
    except OSError as exc:  # pragma: no cover - package always ships it
        raise KernelBuildError(f"kernel source unavailable: {exc}")
    target = build_cache_dir() / f"repro_kernels_{_source_digest(source)}.so"
    if not target.exists():
        try:
            _compile(_SOURCE_PATH, target)
        except KernelBuildError:
            raise
        except OSError as exc:
            raise KernelBuildError(f"kernel build failed: {exc}")
    try:
        return _bind(ctypes.CDLL(str(target)))
    except OSError as exc:
        raise KernelBuildError(f"could not load {target}: {exc}")


def _ptr(array: np.ndarray):
    """Raw int64 pointer of a C-contiguous int64 array."""
    return array.ctypes.data_as(_I64)


def c_minhash_signatures(
    library: ctypes.CDLL,
    indices: np.ndarray,
    indptr: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    empty_slot: int,
) -> np.ndarray:
    n = len(indptr) - 1
    n_hashes = len(a)
    out = np.empty((n, n_hashes), dtype=np.int64)
    if n == 0:
        return out
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    library.repro_minhash_signatures(
        n, n_hashes, _ptr(indices), _ptr(indptr), _ptr(a), _ptr(b),
        int(empty_slot), _ptr(out),
    )
    return out


def c_count_update(
    library: ctypes.CDLL,
    dense: np.ndarray,
    values: np.ndarray,
    labels: np.ndarray,
) -> np.ndarray:
    n, m = values.shape
    new_counts = np.empty((n, m), dtype=np.int64)
    if n == 0:
        return new_counts
    # Visit rows label-sorted so consecutive scatter targets share a
    # cluster block (the cache-friendly layout the C loop expects).
    order = np.argsort(labels, kind="stable")
    library.repro_count_update(
        n, m, dense.shape[2], _ptr(values), _ptr(labels), _ptr(order),
        _ptr(dense), _ptr(new_counts),
    )
    return new_counts
