/* Compiled hot-path kernels behind repro.kernels.
 *
 * Two functions, mirroring the pure-NumPy implementations in
 * repro/kernels/_numpy.py bit for bit:
 *
 *  - repro_minhash_signatures: ragged CSR MinHash.  One walk over each
 *    row's token list, updating all hash slots per token (the
 *    universal-hashing form h(x) = (a*x + b) mod p with the Mersenne
 *    p = 2^31 - 1 shortcut reduction) — no (n_hashes, n_tokens)
 *    intermediate, no per-hash pass over the whole token stream.
 *  - repro_count_update: the (k, m, n_categories) count-tensor
 *    scatter-add plus the post-update gather of each triple's final
 *    count.  Rows are visited in a caller-supplied label-sorted order
 *    so consecutive updates hit the same cluster block.
 *
 * All integer arithmetic is int64 and exact: tokens and coefficients
 * live below 2^31, so a*x + b < 2^62 never overflows, and the
 * two-fold Mersenne reduction is the same sequence the NumPy path
 * (UniversalHashFamily._reduce) performs.
 *
 * Compiled on demand by repro/kernels/_cbuild.py with the system C
 * compiler; OpenMP is used when available (item rows are independent,
 * so thread count never changes a result).
 */

#include <stdint.h>

#define REPRO_P31 2147483647ULL /* 2^31 - 1, the Mersenne prime modulus */

/* Unsigned on purpose: a, b, x all sit below 2^31, so a*x + b < 2^62
 * and signed/unsigned arithmetic agree — but the unsigned form lets
 * the compiler use the 32x32->64 widening multiply and vectorise the
 * hash loop, which is worth ~1.4x on this kernel. */
static inline uint64_t repro_reduce31(uint64_t y)
{
    y = (y & REPRO_P31) + (y >> 31);
    y = (y & REPRO_P31) + (y >> 31);
    return y >= REPRO_P31 ? y - REPRO_P31 : y;
}

void repro_minhash_signatures(
    int64_t n_items,
    int64_t n_hashes,
    const int64_t *indices,
    const int64_t *indptr,
    const int64_t *a,
    const int64_t *b,
    int64_t empty_slot,
    int64_t *out)
{
    int64_t i;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 32)
#endif
    for (i = 0; i < n_items; i++) {
        uint64_t *row = (uint64_t *)(out + i * n_hashes);
        const int64_t start = indptr[i];
        const int64_t stop = indptr[i + 1];
        int64_t h, t;
        for (h = 0; h < n_hashes; h++)
            row[h] = (uint64_t)empty_slot;
        for (t = start; t < stop; t++) {
            const uint64_t x = (uint64_t)indices[t];
            for (h = 0; h < n_hashes; h++) {
                const uint64_t v =
                    repro_reduce31((uint64_t)a[h] * x + (uint64_t)b[h]);
                if (v < row[h])
                    row[h] = v;
            }
        }
    }
}

void repro_count_update(
    int64_t n_rows,
    int64_t n_attrs,
    int64_t capacity,
    const int64_t *values,
    const int64_t *labels,
    const int64_t *order,
    int64_t *dense,
    int64_t *new_counts)
{
    int64_t s, r;
    /* Accumulate in label-sorted order: consecutive rows share a
     * cluster block, so the tensor walks stay cache-resident.  The
     * adds are order-independent, so the result equals np.add.at. */
    for (s = 0; s < n_rows; s++) {
        const int64_t row = order[s];
        const int64_t *vrow = values + row * n_attrs;
        int64_t *block = dense + labels[row] * n_attrs * capacity;
        int64_t j;
        for (j = 0; j < n_attrs; j++)
            block[j * capacity + vrow[j]] += 1;
    }
    /* Gather every triple's count after the whole batch landed, so
     * duplicate triples all read the same final value (the contract
     * the incremental-argmax update relies on). */
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (r = 0; r < n_rows; r++) {
        const int64_t *vrow = values + r * n_attrs;
        const int64_t *block = dense + labels[r] * n_attrs * capacity;
        int64_t *crow = new_counts + r * n_attrs;
        int64_t j;
        for (j = 0; j < n_attrs; j++)
            crow[j] = block[j * capacity + vrow[j]];
    }
}
