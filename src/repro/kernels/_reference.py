"""Loop-form kernel reference implementations.

These functions express the two hot-path kernels as plain element-wise
loops over preallocated arrays.  They serve two roles:

* **oracle** — the conformance suite recomputes small cases through
  them (they are the most direct transcription of the semantics, with
  no vectorisation tricks to hide a bug);
* **JIT source** — they are written in the nopython-compatible subset
  of Python, so the optional Numba backend (``pip install
  repro[kernels]``) compiles these exact functions with ``numba.njit``
  — one set of semantics, three executions (C / Numba / NumPy).

Keep them free of Python objects, closures and fancy indexing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["minhash_signatures_loop", "count_update_loop"]

_P31 = (1 << 31) - 1


def minhash_signatures_loop(indices, indptr, a, b, empty_slot, out):
    """Fill ``out`` with MinHash signatures, one row walk per item."""
    n_items = indptr.shape[0] - 1
    n_hashes = a.shape[0]
    for i in range(n_items):
        for h in range(n_hashes):
            out[i, h] = empty_slot
        for t in range(indptr[i], indptr[i + 1]):
            x = indices[t]
            for h in range(n_hashes):
                y = a[h] * x + b[h]
                y = (y & _P31) + (y >> 31)
                y = (y & _P31) + (y >> 31)
                if y >= _P31:
                    y -= _P31
                if y < out[i, h]:
                    out[i, h] = y
    return out


def count_update_loop(dense, values, labels, order, new_counts):
    """Accumulate ``values`` into ``dense`` then gather final counts."""
    n_rows = values.shape[0]
    n_attrs = values.shape[1]
    for s in range(n_rows):
        row = order[s]
        label = labels[row]
        for j in range(n_attrs):
            dense[label, j, values[row, j]] += 1
    for r in range(n_rows):
        label = labels[r]
        for j in range(n_attrs):
            new_counts[r, j] = dense[label, j, values[r, j]]
    return new_counts


def reference_minhash(indices, indptr, a, b, empty_slot):
    """Allocating convenience wrapper used by the conformance tests."""
    n = len(indptr) - 1
    out = np.empty((n, len(a)), dtype=np.int64)
    return minhash_signatures_loop(
        np.asarray(indices, dtype=np.int64),
        np.asarray(indptr, dtype=np.int64),
        np.asarray(a, dtype=np.int64),
        np.asarray(b, dtype=np.int64),
        empty_slot,
        out,
    )


def reference_count_update(dense, values, labels):
    """Allocating convenience wrapper used by the conformance tests."""
    values = np.asarray(values, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    order = np.argsort(labels, kind="stable")
    new_counts = np.empty(values.shape, dtype=np.int64)
    return count_update_loop(dense, values, labels, order, new_counts)
