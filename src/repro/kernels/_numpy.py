"""Pure-NumPy kernel implementations — the always-available fallback.

These are the exact vectorised code paths that used to live inline in
:meth:`repro.lsh.minhash.MinHasher.signatures` and
:meth:`repro.core.streaming.ClusterModeTracker.add_batch`; the
compiled backends are conformance-tested bit-for-bit against them
(``tests/kernels/test_conformance.py``), and the property suites pin
both to the sequential reference semantics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["minhash_signatures", "count_update"]

#: The Mersenne prime modulus shared with ``repro.lsh.hashing``
#: (duplicated here so the kernels layer has no import cycle with lsh).
_P31 = (1 << 31) - 1


def _reduce31(y: np.ndarray) -> np.ndarray:
    """Exact ``y % (2**31 - 1)`` for ``0 <= y < 2**62`` via shifts.

    The same two-fold-plus-subtract sequence as
    :meth:`repro.lsh.hashing.UniversalHashFamily._reduce`.
    """
    y = (y & _P31) + (y >> 31)
    y = (y & _P31) + (y >> 31)
    return y - (y >= _P31) * _P31


def minhash_signatures(
    indices: np.ndarray,
    indptr: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    empty_slot: int,
) -> np.ndarray:
    """Ragged CSR MinHash: one ``minimum.reduceat`` pass per hash.

    Parameters
    ----------
    indices, indptr:
        The CSR token stream (``repro.lsh.tokens.TokenSets`` layout).
        Tokens must already be validated into ``[0, 2**31 - 1)``.
    a, b:
        Universal-hash coefficient vectors, one entry per hash.
    empty_slot:
        Sentinel written to every slot of an empty row.

    Returns
    -------
    numpy.ndarray
        ``(n_rows, n_hashes)`` int64 signature matrix.
    """
    n = len(indptr) - 1
    n_hashes = len(a)
    out = np.full((n, n_hashes), empty_slot, dtype=np.int64)
    if n == 0 or len(indices) == 0:
        return out
    lengths = np.diff(indptr)
    non_empty = lengths > 0
    # ``reduceat`` cannot express empty segments, so reduce only the
    # non-empty rows and scatter the results back.
    starts = indptr[:-1][non_empty]
    for i in range(n_hashes):
        hashed = _reduce31(a[i] * indices + b[i])
        out[non_empty, i] = np.minimum.reduceat(hashed, starts)
    return out


def count_update(
    dense: np.ndarray, values: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Scatter a batch into the count tensor; gather the final counts.

    Parameters
    ----------
    dense:
        The ``(n_clusters, n_attributes, capacity)`` int64 count
        tensor, updated in place.
    values:
        ``(n_rows, n_attributes)`` int64 category codes, all within
        ``[0, capacity)``.
    labels:
        ``(n_rows,)`` int64 cluster assignments.

    Returns
    -------
    numpy.ndarray
        ``(n_rows, n_attributes)`` int64 — each updated triple's count
        *after* the whole batch landed (every occurrence of a triple
        reads the same final value).
    """
    attr_idx = np.arange(dense.shape[1], dtype=np.int64)
    np.add.at(dense, (labels[:, None], attr_idx[None, :], values), 1)
    return dense[labels[:, None], attr_idx[None, :], values]
