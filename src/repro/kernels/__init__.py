"""repro.kernels — compiled hot-path kernels with NumPy fallbacks.

The profile in ``benchmarks/results/BENCH_stream.json`` puts ~70% of
the extend wall clock in two kernels: the ragged MinHash signature
computation (:mod:`repro.lsh.minhash`) and the mode-count tensor
update (:mod:`repro.core.streaming`).  This package provides compiled
implementations of both behind a single selection seam:

``minhash_signatures(indices, indptr, a, b, empty_slot)``
    CSR MinHash — one walk per item over its token list.

``count_update(dense, values, labels)``
    Scatter-add into the ``(k, m, capacity)`` count tensor plus the
    post-batch gather of each triple's final count.

Backends, in selection order under ``REPRO_KERNELS=auto`` (default):

``numba``
    :func:`numba.njit`-compiled versions of the loop kernels in
    :mod:`repro.kernels._reference` — used when the optional
    ``repro[kernels]`` extra is installed.
``c``
    The shipped C source (``_kernels.c``) compiled on demand with the
    system C compiler and driven through :mod:`ctypes`
    (:mod:`repro.kernels._cbuild`).
``numpy``
    The vectorised fallback (:mod:`repro.kernels._numpy`) — always
    available, and the conformance oracle for the other two.

Set ``REPRO_KERNELS=off`` (or ``numpy``) to force the fallback
silently; ``REPRO_KERNELS=c`` / ``numba`` to require a specific
compiled backend (falls back with one :class:`RuntimeWarning` if it
cannot be built).  Under ``auto`` the degradation to NumPy also emits
exactly one :class:`RuntimeWarning` per process.

Every backend is bit-identical on the supported domain (tokens and
coefficients below ``2**31``, category codes within the tensor
capacity); ``tests/kernels/`` enforces this, and the extend/hot-pass
property suites pin the end-to-end behaviour.  Selection is lazy (first
kernel call) and per-process, so ``PersistentPool`` workers re-resolve
after fork/spawn — nothing ctypes- or JIT-owned ever crosses a pickle
boundary.
"""

from __future__ import annotations

import os
import threading
import warnings

import numpy as np

from repro.kernels import _numpy
from repro.kernels._cbuild import KernelBuildError, load_compiled

__all__ = ["minhash_signatures", "count_update", "active_backend"]

_lock = threading.Lock()

#: Resolved backend name ("numba" | "c" | "numpy"), or None before the
#: first kernel call.
_backend: str | None = None

#: Implementation pair for the resolved backend.
_impl_minhash = None
_impl_counts = None


def _requested() -> str:
    value = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    if value in ("", "auto", "on", "1"):
        return "auto"
    if value in ("off", "0", "none", "numpy", "disable", "disabled"):
        return "numpy"
    if value in ("c", "cc", "ctypes"):
        return "c"
    if value == "numba":
        return "numba"
    warnings.warn(
        f"REPRO_KERNELS={value!r} not recognised; using auto selection",
        RuntimeWarning,
        stacklevel=3,
    )
    return "auto"


def _try_numba():
    """Build the numba tier if the optional extra is installed."""
    try:
        import numba
    except ImportError:
        return None
    return _build_numba(numba)  # pragma: no cover


def _build_numba(numba):  # pragma: no cover - requires repro[kernels]
    """JIT-compile the loop kernels from :mod:`repro.kernels._reference`."""
    from repro.kernels import _reference

    jit_minhash = numba.njit(cache=True)(_reference.minhash_signatures_loop)
    jit_counts = numba.njit(cache=True)(_reference.count_update_loop)

    def minhash(indices, indptr, a, b, empty_slot):
        out = np.empty((len(indptr) - 1, len(a)), dtype=np.int64)
        return jit_minhash(indices, indptr, a, b, empty_slot, out)

    def counts(dense, values, labels):
        order = np.argsort(labels, kind="stable")
        new_counts = np.empty(values.shape, dtype=np.int64)
        return jit_counts(dense, values, labels, order, new_counts)

    try:
        # Trigger compilation now so a broken install degrades to the
        # next tier instead of failing mid-batch.
        minhash(
            np.zeros(0, dtype=np.int64),
            np.zeros(2, dtype=np.int64),
            np.ones(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            0,
        )
    except Exception:
        return None
    return minhash, counts


def _try_c():
    """Build/load the shipped C kernels; None when that fails."""
    try:
        library = load_compiled()
    except KernelBuildError:
        return None
    from repro.kernels._cbuild import c_count_update, c_minhash_signatures

    def minhash(indices, indptr, a, b, empty_slot):
        return c_minhash_signatures(library, indices, indptr, a, b, empty_slot)

    def counts(dense, values, labels):
        return c_count_update(library, dense, values, labels)

    return minhash, counts


def _select() -> None:
    """Resolve the backend once per process (idempotent, thread-safe)."""
    global _backend, _impl_minhash, _impl_counts
    with _lock:
        if _backend is not None:
            return
        requested = _requested()
        candidates = {
            "auto": ("numba", "c"),
            "numba": ("numba",),
            "c": ("c",),
            "numpy": (),
        }[requested]
        for name in candidates:
            pair = _try_numba() if name == "numba" else _try_c()
            if pair is not None:
                _impl_minhash, _impl_counts = pair
                _backend = name
                return
        if candidates:
            # A compiled backend was wanted but none could be built:
            # degrade loudly (once), never incorrectly.
            warnings.warn(
                "repro.kernels: no compiled backend available "
                f"(REPRO_KERNELS={requested}); falling back to the "
                "pure-NumPy kernels",
                RuntimeWarning,
                stacklevel=4,
            )
        _impl_minhash = _numpy.minhash_signatures
        _impl_counts = _numpy.count_update
        _backend = "numpy"


def _reset_backend() -> None:
    """Forget the resolved backend (test hook; selection re-runs lazily)."""
    global _backend, _impl_minhash, _impl_counts
    with _lock:
        _backend = None
        _impl_minhash = None
        _impl_counts = None


def active_backend() -> str:
    """Name of the kernel backend in use: ``"numba"``, ``"c"`` or
    ``"numpy"``.

    Resolves the backend on first call; the result is stable for the
    rest of the process (or until ``_reset_backend()`` in tests).
    """
    if _backend is None:
        _select()
    return _backend  # type: ignore[return-value]


def minhash_signatures(
    indices: np.ndarray,
    indptr: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    empty_slot: int,
) -> np.ndarray:
    """MinHash signatures over CSR token sets.

    Parameters
    ----------
    indices, indptr:
        CSR token stream (``TokenSets`` layout); tokens must already be
        validated into ``[0, 2**31 - 1)``.
    a, b:
        int64 universal-hash coefficient vectors, one entry per hash.
    empty_slot:
        Sentinel filled into every slot of an empty row.

    Returns
    -------
    numpy.ndarray
        ``(n_rows, n_hashes)`` int64 signature matrix — bit-identical
        across backends.
    """
    if _backend is None:
        _select()
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    a = np.ascontiguousarray(a, dtype=np.int64)
    b = np.ascontiguousarray(b, dtype=np.int64)
    return _impl_minhash(indices, indptr, a, b, int(empty_slot))


def count_update(
    dense: np.ndarray, values: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Accumulate a labelled batch into the mode-count tensor.

    Parameters
    ----------
    dense:
        ``(n_clusters, n_attributes, capacity)`` C-contiguous int64
        count tensor, updated **in place**.
    values:
        ``(n_rows, n_attributes)`` category codes in ``[0, capacity)``.
    labels:
        ``(n_rows,)`` cluster assignments in ``[0, n_clusters)``.

    Returns
    -------
    numpy.ndarray
        ``(n_rows, n_attributes)`` int64 — the count of each updated
        ``(label, attribute, value)`` triple *after* the whole batch
        landed, matching ``np.add.at`` + fancy-gather semantics.
    """
    if _backend is None:
        _select()
    values = np.ascontiguousarray(values, dtype=np.int64)
    labels = np.ascontiguousarray(labels, dtype=np.int64)
    return _impl_counts(dense, values, labels)
