"""LSH-K-Means — the framework applied to numeric data (Further Work).

Identical loop to :class:`repro.core.MHKModes`, with three swaps:

* the LSH family is SimHash (cosine) or p-stable projections
  (Euclidean) instead of MinHash;
* distances are squared Euclidean;
* centroids update as means instead of modes.

Everything else — the one-off exhaustive pass, the clustered index
with O(1) reference updates, the shortlist assignment — is inherited
from :class:`repro.core.framework.BaseLSHAcceleratedClustering`,
demonstrating the paper's claim that the framework is generic over
centroid-based algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_estimator
from repro.api.specs import EngineSpec, LSHSpec, TrainSpec
from repro.core.framework import BaseLSHAcceleratedClustering
from repro.exceptions import ConfigurationError, DataValidationError
from repro.kmeans.kmeans import _squared_distances
from repro.lsh.pstable import PStableHasher
from repro.lsh.simhash import SimHasher

__all__ = ["LSHKMeans"]


@register_estimator("lsh-kmeans")
class LSHKMeans(BaseLSHAcceleratedClustering):
    """K-Means accelerated with a banded LSH index over the items.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    lsh:
        :class:`~repro.api.LSHSpec`; the family may be ``'simhash'``
        (cosine; good for direction-clustered data) or ``'pstable'``
        (Euclidean; pick ``width`` near the intra-cluster scale — the
        default spec).
    engine, train, precompute_neighbours:
        See :class:`~repro.core.framework.BaseLSHAcceleratedClustering`.
    **legacy:
        Deprecated flat kwargs (``bands=``, ``family=``, ``width=``,
        ...), mapped onto the specs with a :class:`DeprecationWarning`.

    Examples
    --------
    >>> from repro.api import LSHSpec
    >>> rng = np.random.default_rng(0)
    >>> X = np.vstack([rng.normal(0, 0.1, (20, 5)), rng.normal(5, 0.1, (20, 5))])
    >>> spec = LSHSpec(family="pstable", bands=8, rows=2, seed=0)
    >>> model = LSHKMeans(n_clusters=2, lsh=spec).fit(X)
    >>> sorted(np.bincount(model.labels_).tolist())
    [20, 20]
    """

    _default_lsh = LSHSpec(family="pstable", bands=16, rows=4)
    _default_engine = EngineSpec()
    _default_train = TrainSpec()
    _supported_families = ("simhash", "pstable")
    _supported_inits = ("random",)
    # Empty clusters keep their previous centroid in the mean update.
    _supported_empty_policies = ("keep",)

    def __init__(
        self,
        n_clusters: int,
        lsh: LSHSpec | dict | None = None,
        engine: EngineSpec | dict | None = None,
        train: TrainSpec | dict | None = None,
        precompute_neighbours: bool = True,
        **legacy,
    ):
        super().__init__(
            n_clusters,
            lsh=lsh,
            engine=engine,
            train=train,
            precompute_neighbours=precompute_neighbours,
            **legacy,
        )
        hash_seed = (0 if self.seed is None else int(self.seed)) ^ 0x5EEDBEEF
        if self.family == "simhash":
            self._hasher = SimHasher(self.bands * self.rows, seed=hash_seed)
        else:
            self._hasher = PStableHasher(
                self.bands * self.rows, seed=hash_seed, width=self.width
            )

    def _algorithm_name(self) -> str:
        return f"LSH-K-Means({self.family}) {self.bands}b {self.rows}r"

    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.size == 0:
            raise DataValidationError("X must be a non-empty 2-D matrix")
        if not np.all(np.isfinite(X)):
            raise DataValidationError("X contains NaN or infinite values")
        return X

    def _initial_centroids(
        self, X: np.ndarray, initial: np.ndarray | None, rng: np.random.Generator
    ) -> np.ndarray:
        if initial is not None:
            initial = np.asarray(initial, dtype=np.float64)
            if initial.shape != (self.n_clusters, X.shape[1]):
                raise DataValidationError(
                    f"initial_centroids shape {initial.shape} != "
                    f"({self.n_clusters}, {X.shape[1]})"
                )
            return initial.copy()
        if self.n_clusters > X.shape[0]:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds n_items={X.shape[0]}"
            )
        return X[rng.choice(X.shape[0], self.n_clusters, replace=False)].copy()

    def _prepare_signatures(self, X: np.ndarray) -> None:
        # Both numeric hashers draw their projections lazily on first
        # use; force that here so parallel signature chunks never race
        # on the initialisation (and all see identical projections).
        self._hasher.signatures(X[:1])

    def _signatures(self, X: np.ndarray) -> np.ndarray:
        return self._hasher.signatures(X)

    def _exhaustive_assign(
        self, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, int]:
        distances = _squared_distances(X, centroids)
        best = np.argmin(distances, axis=1)
        assigned = labels >= 0
        if np.any(assigned):
            rows_idx = np.flatnonzero(assigned)
            current = labels[rows_idx]
            keep = distances[rows_idx, current] <= distances[rows_idx, best[rows_idx]]
            best[rows_idx[keep]] = current[keep]
        moves = int(np.count_nonzero(best != labels))
        return best.astype(np.int64), moves

    def _point_distances(
        self, X: np.ndarray, item: int, centroids: np.ndarray
    ) -> np.ndarray:
        delta = centroids - X[item][None, :]
        return np.einsum("ij,ij->i", delta, delta)

    def _block_distances(
        self, block: np.ndarray, centroid_blocks: np.ndarray
    ) -> np.ndarray:
        # Same contraction order over the attribute axis as the per-item
        # einsum above, so chunked passes reproduce serial distances
        # bit for bit.
        delta = centroid_blocks - block[:, None, :]
        return np.einsum("csm,csm->cs", delta, delta)

    def _update_centroids(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        sums = np.zeros_like(previous)
        np.add.at(sums, labels, X)
        counts = np.bincount(labels, minlength=self.n_clusters).astype(np.float64)
        out = previous.copy()
        populated = counts > 0
        out[populated] = sums[populated] / counts[populated, None]
        return out

    def _compute_cost(
        self, X: np.ndarray, centroids: np.ndarray, labels: np.ndarray
    ) -> float:
        deltas = X - centroids[labels]
        return float(np.einsum("ij,ij->", deltas, deltas))
