"""Lloyd's K-Means — the exhaustive numeric baseline.

Mirrors :class:`repro.kmodes.KModes` structurally (same statistics,
same convergence criterion, same fixed-initialisation protocol) so the
numeric extension benchmarks read exactly like the categorical ones.
"""

from __future__ import annotations

import numpy as np

from repro.api.protocol import EstimatorProtocol
from repro.api.registry import register_estimator
from repro.api.specs import EngineSpec, TrainSpec
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    check_fitted,
)
from repro.instrumentation import RunStats, Timer

__all__ = ["KMeans"]


def _squared_distances(X: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """All-pairs squared Euclidean distances via the expansion trick.

    ``|x - c|² = |x|² - 2 x·c + |c|²``; one matmul instead of an
    ``(n, k, d)`` broadcast.  Clipped at zero against float cancellation.
    """
    x_sq = np.einsum("ij,ij->i", X, X)[:, None]
    c_sq = np.einsum("ij,ij->i", centroids, centroids)[None, :]
    cross = X @ centroids.T
    return np.maximum(x_sq - 2.0 * cross + c_sq, 0.0)


@register_estimator("kmeans")
class KMeans(EstimatorProtocol):
    """Exhaustive K-Means with per-iteration instrumentation.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    init:
        ``'random'`` — k distinct items; ``'kmeans++'`` — D² weighting.
    max_iter:
        Iteration cap.
    seed:
        Initialisation seed.
    track_cost:
        Record the SSE each iteration.

    Attributes
    ----------
    centroids_, labels_, cost_, n_iter_, converged_, stats_:
        As in :class:`repro.kmodes.KModes`.

    Examples
    --------
    >>> X = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
    >>> km = KMeans(n_clusters=2, seed=0).fit(X)
    >>> sorted(np.bincount(km.labels_).tolist())
    [2, 2]
    """

    def __init__(
        self,
        n_clusters: int,
        init: str = "random",
        max_iter: int = 100,
        seed: int | None = None,
        track_cost: bool = True,
    ):
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be positive, got {max_iter}")
        if init not in ("random", "kmeans++"):
            raise ConfigurationError(
                f"init must be 'random' or 'kmeans++', got {init!r}"
            )
        self.n_clusters = int(n_clusters)
        self.init = init
        self.max_iter = int(max_iter)
        self.seed = seed
        self.track_cost = bool(track_cost)

        self.cost_: float = float("nan")
        self.n_iter_: int = 0
        self.converged_: bool = False
        self._centroids: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._stats: RunStats | None = None

    # ------------------------------------------------------------------
    # fitted state (NotFittedError before fit)
    # ------------------------------------------------------------------

    def _is_fitted(self) -> bool:
        return self._centroids is not None

    @property
    def centroids_(self) -> np.ndarray:
        """``(k, d)`` fitted centroids."""
        check_fitted(self)
        return self._centroids

    @property
    def labels_(self) -> np.ndarray:
        """``(n,)`` cluster id per training item."""
        check_fitted(self)
        return self._labels

    @property
    def stats_(self) -> RunStats | None:
        """Fit statistics (``None`` on estimators restored from disk)."""
        check_fitted(self)
        return self._stats

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, initial_centroids: np.ndarray | None = None) -> "KMeans":
        """Cluster ``X``; optionally start from explicit centroids."""
        X = self._validate_X(X)
        rng = np.random.default_rng(self.seed)
        centroids = self._initial_centroids(X, initial_centroids, rng)
        n = X.shape[0]
        labels = np.full(n, -1, dtype=np.int64)
        stats = RunStats(algorithm="K-Means")
        converged = False

        for _ in range(self.max_iter):
            with Timer() as timer:
                distances = _squared_distances(X, centroids)
                best = np.argmin(distances, axis=1)
                assigned = labels >= 0
                if np.any(assigned):
                    rows = np.flatnonzero(assigned)
                    current = labels[rows]
                    keep = distances[rows, current] <= distances[rows, best[rows]]
                    best[rows[keep]] = current[keep]
                moves = int(np.count_nonzero(best != labels))
                labels = best
                centroids = self._update(X, labels, centroids)
            cost = (
                float(_squared_distances(X, centroids)[np.arange(n), labels].sum())
                if self.track_cost
                else float("nan")
            )
            stats.record(
                duration_s=timer.elapsed_s,
                moves=moves,
                cost=cost,
                mean_shortlist=float(self.n_clusters),
                n_empty_clusters=self.n_clusters - len(np.unique(labels)),
            )
            if moves == 0:
                converged = True
                break

        stats.converged = converged
        self._centroids = centroids
        self._labels = labels
        self.cost_ = float(
            _squared_distances(X, centroids)[np.arange(n), labels].sum()
        )
        self.n_iter_ = stats.n_iterations
        self.converged_ = converged
        self._stats = stats
        return self

    def fit_predict(self, X: np.ndarray, initial_centroids: np.ndarray | None = None) -> np.ndarray:
        """Fit and return the training labels."""
        self.fit(X, initial_centroids=initial_centroids)
        assert self.labels_ is not None
        return self.labels_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest fitted centroid."""
        check_fitted(self)
        X = self._validate_predict_X(X)
        if X.shape[1] != self.centroids_.shape[1]:
            raise DataValidationError(
                f"X has {X.shape[1]} features but the model was fitted "
                f"with {self.centroids_.shape[1]}"
            )
        if X.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return np.argmin(_squared_distances(X, self.centroids_), axis=1)

    # ------------------------------------------------------------------
    # artifact support
    # ------------------------------------------------------------------

    def fitted_model(self):
        """Export the immutable :class:`~repro.api.ClusterModel` artifact."""
        from repro.api.model import ClusterModel

        check_fitted(self)
        return ClusterModel(
            algorithm=type(self)._registry_name,
            n_clusters=self.n_clusters,
            centroids=self._centroids,
            lsh=None,
            engine=EngineSpec(),
            train=TrainSpec(
                init=self.init, max_iter=self.max_iter, track_cost=self.track_cost
            ),
            labels=self._labels,
            params=self.get_params(),
            state=self._artifact_scalars(),
            metadata=self._artifact_metadata(),
        )

    # ------------------------------------------------------------------

    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.size == 0:
            raise DataValidationError("X must be a non-empty 2-D matrix")
        if not np.all(np.isfinite(X)):
            raise DataValidationError("X contains NaN or infinite values")
        return X

    def _initial_centroids(
        self,
        X: np.ndarray,
        initial: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if initial is not None:
            initial = np.asarray(initial, dtype=np.float64)
            if initial.shape != (self.n_clusters, X.shape[1]):
                raise DataValidationError(
                    f"initial_centroids shape {initial.shape} != "
                    f"({self.n_clusters}, {X.shape[1]})"
                )
            return initial.copy()
        if self.n_clusters > X.shape[0]:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds n_items={X.shape[0]}"
            )
        if self.init == "random":
            return X[rng.choice(X.shape[0], self.n_clusters, replace=False)].copy()
        return self._kmeanspp(X, rng)

    def _kmeanspp(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding (D² sampling)."""
        n = X.shape[0]
        centroids = np.empty((self.n_clusters, X.shape[1]), dtype=np.float64)
        centroids[0] = X[rng.integers(n)]
        closest = _squared_distances(X, centroids[:1]).ravel()
        for i in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0.0:
                # All points coincide with chosen centroids; fill uniformly.
                centroids[i:] = X[rng.choice(n, self.n_clusters - i)]
                break
            probabilities = closest / total
            centroids[i] = X[rng.choice(n, p=probabilities)]
            closest = np.minimum(
                closest, _squared_distances(X, centroids[i : i + 1]).ravel()
            )
        return centroids

    def _update(
        self, X: np.ndarray, labels: np.ndarray, previous: np.ndarray
    ) -> np.ndarray:
        """Mean update; empty clusters keep their previous centroid."""
        sums = np.zeros_like(previous)
        np.add.at(sums, labels, X)
        counts = np.bincount(labels, minlength=self.n_clusters).astype(np.float64)
        out = previous.copy()
        populated = counts > 0
        out[populated] = sums[populated] / counts[populated, None]
        return out

