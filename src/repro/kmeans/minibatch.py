"""Mini-batch K-Means (Sculley, WWW 2010) — related-work baseline [16].

The paper's related work cites mini-batch K-Means as the other route
to web-scale clustering: trade assignment exactness for per-iteration
cost by updating centroids from small random batches with per-centroid
learning rates ``1/count``.  Including it lets the benchmarks compare
the paper's *search-space reduction* against the *sampling* approach
on the same substrate.
"""

from __future__ import annotations

import numpy as np

from repro.api.protocol import EstimatorProtocol
from repro.api.registry import register_estimator
from repro.api.specs import EngineSpec, TrainSpec
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    check_fitted,
)
from repro.instrumentation import RunStats, Timer
from repro.kmeans.kmeans import _squared_distances

__all__ = ["MiniBatchKMeans"]


@register_estimator("minibatch-kmeans")
class MiniBatchKMeans(EstimatorProtocol):
    """Sculley-style mini-batch K-Means.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    batch_size:
        Items sampled per iteration.
    max_iter:
        Number of mini-batch iterations (there is no natural
        convergence test; the standard practice of a fixed budget is
        used, with an optional early stop on centroid movement).
    tol:
        Early-stop threshold on the mean squared centroid displacement
        per iteration; set to 0 to disable.
    seed:
        Seed for initial centroids and batch sampling.

    Attributes
    ----------
    centroids_, labels_, cost_, n_iter_, stats_:
        ``labels_``/``cost_`` come from one final full assignment pass.
    """

    def __init__(
        self,
        n_clusters: int,
        batch_size: int = 256,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int | None = None,
    ):
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be positive, got {max_iter}")
        if tol < 0:
            raise ConfigurationError(f"tol must be non-negative, got {tol}")
        self.n_clusters = int(n_clusters)
        self.batch_size = int(batch_size)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed

        self.cost_: float = float("nan")
        self.n_iter_: int = 0
        self.converged_: bool = False
        self._centroids: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._stats: RunStats | None = None

    def _is_fitted(self) -> bool:
        return self._centroids is not None

    @property
    def centroids_(self) -> np.ndarray:
        """``(k, d)`` fitted centroids."""
        check_fitted(self)
        return self._centroids

    @property
    def labels_(self) -> np.ndarray:
        """``(n,)`` labels from the final full assignment pass."""
        check_fitted(self)
        return self._labels

    @property
    def stats_(self) -> RunStats | None:
        """Fit statistics (``None`` on estimators restored from disk)."""
        check_fitted(self)
        return self._stats

    def fit(
        self, X: np.ndarray, initial_centroids: np.ndarray | None = None
    ) -> "MiniBatchKMeans":
        """Run the mini-batch optimisation on ``X``."""
        X = self._validate_X(X)
        n = X.shape[0]
        rng = np.random.default_rng(self.seed)
        if initial_centroids is not None:
            centroids = np.asarray(initial_centroids, dtype=np.float64)
            if centroids.shape != (self.n_clusters, X.shape[1]):
                raise DataValidationError(
                    f"initial_centroids shape {centroids.shape} != "
                    f"({self.n_clusters}, {X.shape[1]})"
                )
            centroids = centroids.copy()
        else:
            if self.n_clusters > n:
                raise ConfigurationError(
                    f"n_clusters={self.n_clusters} exceeds n_items={n}"
                )
            centroids = X[rng.choice(n, self.n_clusters, replace=False)].copy()

        counts = np.zeros(self.n_clusters, dtype=np.int64)
        stats = RunStats(algorithm=f"MiniBatch-K-Means b{self.batch_size}")
        converged = False
        batch = min(self.batch_size, n)

        for _ in range(self.max_iter):
            with Timer() as timer:
                previous = centroids.copy()
                sample = rng.choice(n, size=batch, replace=False)
                points = X[sample]
                nearest = np.argmin(_squared_distances(points, centroids), axis=1)
                # Per-centre gradient step with learning rate 1/count.
                for point, centre in zip(points, nearest):
                    counts[centre] += 1
                    eta = 1.0 / counts[centre]
                    centroids[centre] += eta * (point - centroids[centre])
                shift = float(np.mean((centroids - previous) ** 2))
            stats.record(
                duration_s=timer.elapsed_s,
                moves=batch,
                cost=float("nan"),
                mean_shortlist=float(self.n_clusters),
            )
            if self.tol > 0.0 and shift < self.tol:
                converged = True
                break

        # Final full pass for labels and cost.
        distances = _squared_distances(X, centroids)
        labels = np.argmin(distances, axis=1)
        stats.converged = converged
        self._centroids = centroids
        self._labels = labels
        self.cost_ = float(distances[np.arange(n), labels].sum())
        self.n_iter_ = stats.n_iterations
        self.converged_ = converged
        self._stats = stats
        return self

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit and return the training labels."""
        self.fit(X)
        assert self.labels_ is not None
        return self.labels_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest fitted centroid."""
        check_fitted(self)
        X = self._validate_predict_X(X)
        if X.shape[1] != self.centroids_.shape[1]:
            raise DataValidationError(
                f"X has {X.shape[1]} features but the model was fitted "
                f"with {self.centroids_.shape[1]}"
            )
        if X.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return np.argmin(_squared_distances(X, self.centroids_), axis=1)

    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.size == 0:
            raise DataValidationError("X must be a non-empty 2-D matrix")
        if not np.all(np.isfinite(X)):
            raise DataValidationError("X contains NaN or infinite values")
        return X

    # ------------------------------------------------------------------
    # artifact support
    # ------------------------------------------------------------------

    def fitted_model(self):
        """Export the immutable :class:`~repro.api.ClusterModel` artifact."""
        from repro.api.model import ClusterModel

        check_fitted(self)
        return ClusterModel(
            algorithm=type(self)._registry_name,
            n_clusters=self.n_clusters,
            centroids=self._centroids,
            lsh=None,
            engine=EngineSpec(),
            train=TrainSpec(max_iter=self.max_iter),
            labels=self._labels,
            params=self.get_params(),
            state=self._artifact_scalars(),
            metadata=self._artifact_metadata(),
        )
