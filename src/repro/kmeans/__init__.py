"""Numeric clustering: K-Means, mini-batch K-Means, and LSH-K-Means.

The paper's Further Work section proposes extending the LSH
acceleration framework "to work with not only categorical data, but
numeric data".  This package delivers that extension:

* :mod:`repro.kmeans.kmeans` — Lloyd's K-Means (exhaustive baseline);
* :mod:`repro.kmeans.minibatch` — Sculley's web-scale mini-batch
  K-Means, the related-work baseline the paper cites ([16]);
* :mod:`repro.kmeans.mh_kmeans` — :class:`LSHKMeans`, the framework
  instantiated with SimHash (cosine) or p-stable (Euclidean) hashing
  instead of MinHash.
"""

from repro.kmeans.kmeans import KMeans
from repro.kmeans.minibatch import MiniBatchKMeans
from repro.kmeans.mh_kmeans import LSHKMeans

__all__ = ["KMeans", "MiniBatchKMeans", "LSHKMeans"]
