"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  More specific subclasses exist for configuration problems
(bad parameters), data problems (malformed or empty inputs), and
convergence problems (an iterative algorithm that cannot proceed).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataValidationError",
    "NotFittedError",
    "ConvergenceError",
    "EmptyClusterError",
    "check_fitted",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An estimator or index was constructed with invalid parameters.

    Raised eagerly, at construction or fit time, so that a bad ``bands``
    / ``rows`` / ``n_clusters`` combination fails loudly instead of
    producing silently meaningless results.
    """


class DataValidationError(ReproError, ValueError):
    """Input data does not satisfy the contract of the API being called.

    Examples: an empty dataset, a non-2D matrix passed where items ×
    attributes is required, or mismatched shapes between data and labels.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model attribute or method was used before ``fit`` completed."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed in a way that cannot be recovered.

    This is *not* raised when an algorithm merely hits ``max_iter`` —
    that is a normal, reported outcome — but when the internal state
    becomes inconsistent (for instance, every cluster lost its members).
    """


class EmptyClusterError(ReproError, RuntimeError):
    """A cluster lost all members and the configured policy is ``'error'``."""


def check_fitted(estimator, message: str | None = None) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` has been fitted.

    The single gate every fitted-state access routes through: an
    estimator advertises its state via an ``_is_fitted()`` method (the
    :class:`repro.api.EstimatorProtocol` default reads a ``_fitted``
    flag set by ``fit``), and every ``predict`` / ``labels_`` /
    ``centroids_`` access calls this helper, so unfitted use uniformly
    surfaces ``NotFittedError`` instead of a raw ``AttributeError``.

    Parameters
    ----------
    estimator:
        Any object exposing ``_is_fitted()`` (or a truthy ``_fitted``
        attribute).
    message:
        Override for the error message.
    """
    probe = getattr(estimator, "_is_fitted", None)
    fitted = bool(probe()) if callable(probe) else bool(
        getattr(estimator, "_fitted", False)
    )
    if not fitted:
        raise NotFittedError(
            message
            or (
                f"this {type(estimator).__name__} instance is not fitted "
                "yet; call 'fit' (or 'bootstrap' for streaming estimators) "
                "before using it"
            )
        )
