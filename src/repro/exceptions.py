"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  More specific subclasses exist for configuration problems
(bad parameters), data problems (malformed or empty inputs), and
convergence problems (an iterative algorithm that cannot proceed).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataValidationError",
    "NotFittedError",
    "ConvergenceError",
    "EmptyClusterError",
    "ServerClosedError",
    "OverloadedError",
    "DeadlineExceededError",
    "PoolBrokenError",
    "check_fitted",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An estimator or index was constructed with invalid parameters.

    Raised eagerly, at construction or fit time, so that a bad ``bands``
    / ``rows`` / ``n_clusters`` combination fails loudly instead of
    producing silently meaningless results.
    """


class DataValidationError(ReproError, ValueError):
    """Input data does not satisfy the contract of the API being called.

    Examples: an empty dataset, a non-2D matrix passed where items ×
    attributes is required, or mismatched shapes between data and labels.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model attribute or method was used before ``fit`` completed."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed in a way that cannot be recovered.

    This is *not* raised when an algorithm merely hits ``max_iter`` —
    that is a normal, reported outcome — but when the internal state
    becomes inconsistent (for instance, every cluster lost its members).
    """


class EmptyClusterError(ReproError, RuntimeError):
    """A cluster lost all members and the configured policy is ``'error'``."""


class ServerClosedError(ConfigurationError):
    """A request reached a serving object that is closed or draining.

    Raised by :meth:`repro.serve.ModelServer._check_open`, the admission
    queue and :meth:`repro.engine.pool.PersistentPool._check_open`.  A
    subclass of :class:`ConfigurationError` so callers that historically
    caught that for "used after close" keep working; the serving layer
    maps it to HTTP 503 with error code ``"shutting_down"``.
    """


class OverloadedError(ReproError, RuntimeError):
    """Admission control rejected a request: the server is at capacity.

    Raised *immediately* — an overloaded server answers fast instead of
    queueing unboundedly.  ``retry_after_s`` is the server's hint for
    when capacity is likely back; the serving layer surfaces it as a
    ``Retry-After`` header on HTTP 429 and as ``retry_after_s`` in the
    NDJSON error object (code ``"overloaded"``).
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's deadline expired before its labels were produced.

    The request is abandoned (its result, if any, is discarded) but the
    serving pool is untouched — the next request proceeds normally.
    Maps to HTTP 504 with error code ``"deadline_exceeded"``.
    """


class PoolBrokenError(ReproError, RuntimeError):
    """A worker pool died and could not (or may not) be recovered.

    Raised when a :class:`~repro.engine.pool.PersistentPool` exhausts
    its restart budget and the configured degrade policy is
    ``'error'``, or when respawning the pool itself fails.  Maps to
    HTTP 500 with error code ``"pool_broken"``.
    """


def check_fitted(estimator, message: str | None = None) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` has been fitted.

    The single gate every fitted-state access routes through: an
    estimator advertises its state via an ``_is_fitted()`` method (the
    :class:`repro.api.EstimatorProtocol` default reads a ``_fitted``
    flag set by ``fit``), and every ``predict`` / ``labels_`` /
    ``centroids_`` access calls this helper, so unfitted use uniformly
    surfaces ``NotFittedError`` instead of a raw ``AttributeError``.

    Parameters
    ----------
    estimator:
        Any object exposing ``_is_fitted()`` (or a truthy ``_fitted``
        attribute).
    message:
        Override for the error message.
    """
    probe = getattr(estimator, "_is_fitted", None)
    fitted = bool(probe()) if callable(probe) else bool(
        getattr(estimator, "_fitted", False)
    )
    if not fitted:
        raise NotFittedError(
            message
            or (
                f"this {type(estimator).__name__} instance is not fitted "
                "yet; call 'fit' (or 'bootstrap' for streaming estimators) "
                "before using it"
            )
        )
