"""Measurement plumbing shared by every estimator and benchmark.

The paper's evaluation (Figures 2-10) plots, per iteration: wall time,
number of cluster reassignments ("moves"), and the average size of the
candidate-cluster shortlist.  :class:`~repro.instrumentation.stats.RunStats`
records exactly those series so that any fitted estimator can be turned
into the paper's figures without re-running anything.
"""

from repro.instrumentation.stats import IterationStats, RunStats
from repro.instrumentation.timer import StageTimer, Timer

__all__ = ["IterationStats", "RunStats", "Timer", "StageTimer"]
