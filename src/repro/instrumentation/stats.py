"""Per-iteration run statistics — the raw material of every figure.

Each clustering run produces a :class:`RunStats` holding one
:class:`IterationStats` per iteration.  The fields mirror the y-axes of
the paper's figures:

* ``duration_s``    → Figures 2a, 3a/3b, 4c, 5a, 9a, 10a (time per iteration)
* ``moves``         → Figures 2c, 3d, 4b, 9c, 10d (cluster reassignments)
* ``mean_shortlist``→ Figures 2b, 3c, 4a, 5b, 9b, 10c (avg clusters returned)
* totals            → Figures 6, 7, 9d, 10b (total time to cluster)
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IterationStats", "RunStats"]


@dataclass(frozen=True)
class IterationStats:
    """Measurements from a single assign-and-update iteration.

    Attributes
    ----------
    iteration:
        1-based iteration number.
    duration_s:
        Wall-clock seconds spent on this iteration (assignment +
        mode/centroid update).
    moves:
        Number of items that changed cluster during the assignment step.
    cost:
        Value of the clustering cost function P(W, Q) after the
        iteration (``nan`` when cost tracking is disabled).
    mean_shortlist:
        Average number of candidate clusters examined per item.  For an
        exhaustive algorithm this equals the number of clusters.
    n_empty_clusters:
        Clusters that ended the iteration with no members.
    """

    iteration: int
    duration_s: float
    moves: int
    cost: float
    mean_shortlist: float
    n_empty_clusters: int = 0


@dataclass
class RunStats:
    """Everything measured over one clustering run.

    Attributes
    ----------
    algorithm:
        Human-readable label, e.g. ``"K-Modes"`` or
        ``"MH-K-Modes 20b 5r"``.
    setup_s:
        One-off setup cost before iterations start.  For MH-K-Modes
        this is the initial MinHash indexing pass the paper counts in
        the total clustering time.
    iterations:
        One entry per completed iteration.
    converged:
        True when the run stopped because no item moved (rather than
        hitting ``max_iter``).
    phase_s:
        Wall-clock seconds per engine phase (``session_open`` — the
        one-off worker-pool spin-up of the fit-lifetime session —
        ``exhaustive_assign``, ``signatures``, ``index_build``,
        ``iterations``), populated by the framework fit loop; empty
        for runs that predate phase accounting.
    """

    algorithm: str = ""
    setup_s: float = 0.0
    iterations: list[IterationStats] = field(default_factory=list)
    converged: bool = False
    phase_s: dict[str, float] = field(default_factory=dict)

    def record(
        self,
        duration_s: float,
        moves: int,
        cost: float = float("nan"),
        mean_shortlist: float = float("nan"),
        n_empty_clusters: int = 0,
    ) -> IterationStats:
        """Append one iteration's measurements and return the record."""
        stats = IterationStats(
            iteration=len(self.iterations) + 1,
            duration_s=float(duration_s),
            moves=int(moves),
            cost=float(cost),
            mean_shortlist=float(mean_shortlist),
            n_empty_clusters=int(n_empty_clusters),
        )
        self.iterations.append(stats)
        return stats

    # ------------------------------------------------------------------
    # aggregates used by the figures
    # ------------------------------------------------------------------

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def iteration_times(self) -> list[float]:
        """Per-iteration wall times (Figure 2a and friends)."""
        return [it.duration_s for it in self.iterations]

    @property
    def moves_per_iteration(self) -> list[int]:
        """Per-iteration reassignment counts (Figure 2c and friends)."""
        return [it.moves for it in self.iterations]

    @property
    def shortlist_sizes(self) -> list[float]:
        """Per-iteration mean shortlist sizes (Figure 2b and friends)."""
        return [it.mean_shortlist for it in self.iterations]

    @property
    def costs(self) -> list[float]:
        return [it.cost for it in self.iterations]

    @property
    def total_time_s(self) -> float:
        """Setup plus all iterations — the paper's 'total time to cluster'."""
        return self.setup_s + sum(it.duration_s for it in self.iterations)

    @property
    def mean_iteration_s(self) -> float:
        if not self.iterations:
            return 0.0
        return sum(it.duration_s for it in self.iterations) / len(self.iterations)

    @property
    def total_moves(self) -> int:
        return sum(it.moves for it in self.iterations)

    def to_rows(self) -> list[dict[str, float]]:
        """Flatten into one dict per iteration (for reports and CSVs)."""
        return [
            {
                "algorithm": self.algorithm,
                "iteration": it.iteration,
                "duration_s": it.duration_s,
                "moves": it.moves,
                "cost": it.cost,
                "mean_shortlist": it.mean_shortlist,
                "n_empty_clusters": it.n_empty_clusters,
            }
            for it in self.iterations
        ]

    def summary(self) -> dict[str, float]:
        """One-line aggregate used in comparison tables."""
        return {
            "algorithm": self.algorithm,
            "n_iterations": self.n_iterations,
            "setup_s": self.setup_s,
            "total_s": self.total_time_s,
            "mean_iteration_s": self.mean_iteration_s,
            "total_moves": self.total_moves,
            "converged": self.converged,
        }
