"""Small wall-clock timers used throughout the library.

``time.perf_counter`` based; no monkey-patching, no globals.  The
timers are deliberately tiny — they exist so estimators and benchmarks
share one way of measuring rather than sprinkling ``perf_counter``
arithmetic everywhere.
"""

from __future__ import annotations

import time
from types import TracebackType

__all__ = ["Timer", "StageTimer"]


class Timer:
    """Context manager measuring one wall-clock interval.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_s >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        assert self._start is not None
        self.elapsed_s = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start point (for manual, non-context-manager use)."""
        self._start = time.perf_counter()

    def lap(self) -> float:
        """Seconds since construction/restart, without stopping."""
        if self._start is None:
            self.restart()
            return 0.0
        return time.perf_counter() - self._start


class StageTimer:
    """Accumulates named stage durations (setup, assign, update, ...).

    Examples
    --------
    >>> timer = StageTimer()
    >>> with timer.stage("assign"):
    ...     _ = sum(range(1000))
    >>> "assign" in timer.totals
    True
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    class _Stage:
        def __init__(self, owner: "StageTimer", name: str) -> None:
            self._owner = owner
            self._name = name
            self._timer = Timer()

        def __enter__(self) -> "StageTimer._Stage":
            self._timer.__enter__()
            return self

        def __exit__(
            self,
            exc_type: type[BaseException] | None,
            exc: BaseException | None,
            tb: TracebackType | None,
        ) -> None:
            self._timer.__exit__(exc_type, exc, tb)
            self._owner.totals[self._name] = (
                self._owner.totals.get(self._name, 0.0) + self._timer.elapsed_s
            )
            self._owner.counts[self._name] = self._owner.counts.get(self._name, 0) + 1

    def stage(self, name: str) -> "_Stage":
        """Return a context manager accumulating into stage ``name``."""
        return StageTimer._Stage(self, name)

    def total(self, name: str) -> float:
        """Total seconds recorded for ``name`` (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per entry for ``name`` (0.0 if never entered)."""
        count = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / count if count else 0.0
