"""Deterministic fault injection for the chaos test suite.

Production code cannot be trusted to recover from worker death unless
something actually kills workers, on schedule, in tests.  This module
is that schedule.  A :class:`FaultPlan` names which kernel invocations
misbehave — counted globally, 1-based, across every worker and retry —
and :func:`inject_faults` arms it:

* ``kill_on_chunks`` — the worker executing the n-th kernel call dies
  with ``SIGKILL`` mid-chunk, exactly the failure a crashed or
  OOM-killed process produces (process pools report it as
  ``BrokenProcessPool``);
* ``drop_on_chunks`` — the n-th kernel call raises
  :class:`InjectedPoolFault`, which the pool treats as a lost result.
  Because no process actually dies, drop faults exercise the whole
  respawn/retry/degrade machinery on *serial and thread* backends too,
  which is what lets the hypothesis chaos suite run hundreds of fault
  schedules in seconds;
* ``delay_s`` — every kernel call sleeps first, for deadline tests.

The call counter is a :class:`multiprocessing.Value`, created when the
plan is installed, so fork-inherited workers and the parent share one
atomic count: "kill on chunk 3" kills exactly one worker exactly once,
and the respawned pool — whose fresh workers inherit the already-spent
counter — sails through the retry.  **Install the plan before the pool
(or server) is built**: fork workers only see globals that existed
when they were forked.

:meth:`repro.engine.pool.PersistentPool.run` checks
:func:`active_faults` once per dispatch; when no plan is armed the
production path pays a single global read and nothing else.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "FaultPlan",
    "FaultState",
    "InjectedPoolFault",
    "active_faults",
    "install_faults",
    "clear_faults",
    "inject_faults",
]


class InjectedPoolFault(Exception):
    """A simulated lost result (the ``drop`` fault).

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: the
    pool's broken-dispatch detection must treat it exactly like the
    infrastructure failures it stands in for.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Which kernel invocations misbehave (all counts global, 1-based).

    >>> FaultPlan(kill_on_chunks=(3,), delay_s=0.0)
    FaultPlan(kill_on_chunks=(3,), drop_on_chunks=(), delay_s=0.0)
    """

    kill_on_chunks: tuple[int, ...] = ()
    drop_on_chunks: tuple[int, ...] = ()
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill_on_chunks", "drop_on_chunks"):
            value = getattr(self, name)
            if not isinstance(value, tuple) or not all(
                isinstance(n, int) and n >= 1 for n in value
            ):
                raise ConfigurationError(
                    f"{name} must be a tuple of 1-based chunk numbers, "
                    f"got {value!r}"
                )
        if not isinstance(self.delay_s, (int, float)) or self.delay_s < 0:
            raise ConfigurationError(
                f"delay_s must be a non-negative number, got {self.delay_s!r}"
            )


class FaultState:
    """An armed :class:`FaultPlan` plus its cross-process call counter."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        # Shared across fork so a kill fires exactly once no matter
        # which worker draws the fatal chunk, and respawned workers
        # inherit the spent count instead of dying again.
        self._counter = multiprocessing.Value("q", 0)

    @property
    def chunks_seen(self) -> int:
        """Kernel invocations counted so far (across all processes)."""
        with self._counter.get_lock():
            return int(self._counter.value)

    def on_chunk(self) -> None:
        """Called by the fault-wrapping kernel before the real kernel.

        Runs wherever the kernel runs — in-process for serial/thread
        backends, inside the worker for process pools.
        """
        with self._counter.get_lock():
            self._counter.value += 1
            n = int(self._counter.value)
        if self.plan.delay_s:
            time.sleep(self.plan.delay_s)
        if n in self.plan.kill_on_chunks:
            # Die the way real workers die: no exception, no cleanup.
            os.kill(os.getpid(), signal.SIGKILL)
        if n in self.plan.drop_on_chunks:
            raise InjectedPoolFault(f"injected drop on chunk {n}")


#: The armed plan, if any.  A module global so fork-created workers
#: inherit it for free; ``None`` keeps the production path one read.
_ACTIVE: FaultState | None = None


def active_faults() -> FaultState | None:
    """The armed :class:`FaultState`, or ``None`` (the production case)."""
    return _ACTIVE


def install_faults(plan: FaultPlan) -> FaultState:
    """Arm ``plan`` process-wide; returns its :class:`FaultState`.

    Arms *before* any pool under test is created — fork workers see
    the plan only if it existed at fork time.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise ConfigurationError(
            "a fault plan is already installed; clear_faults() first "
            "(fault plans do not nest)"
        )
    _ACTIVE = FaultState(plan)
    return _ACTIVE


def clear_faults() -> None:
    """Disarm any installed plan (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def inject_faults(plan: FaultPlan):
    """Context manager: arm ``plan``, yield its state, always disarm.

    >>> with inject_faults(FaultPlan(drop_on_chunks=(1,))) as state:
    ...     state.plan.drop_on_chunks
    (1,)
    >>> active_faults() is None
    True
    """
    state = install_faults(plan)
    try:
        yield state
    finally:
        clear_faults()


def faulted_kernel(static, dynamic, task):
    """Kernel wrapper: ``task`` is ``(real_fn, real_task)``.

    Module-level (and so picklable) so process pools can dispatch it;
    reads the fault state from its own process's module global, which
    fork workers inherited at pool-creation time.
    """
    fn, real_task = task
    state = active_faults()
    if state is not None:
        state.on_chunk()
    return fn(static, dynamic, real_task)
