"""Admission control + micro-batching in front of the serving path.

A stdlib ``ThreadingHTTPServer`` gives every connection its own thread,
so under overload a naive server grows threads without bound and every
request gets slower together.  :class:`AdmissionQueue` inverts that
shape into the classic bounded-queue server:

* **Admission.**  ``submit`` either enqueues the request or rejects it
  *immediately* — :class:`~repro.exceptions.OverloadedError` when
  ``max_queue_depth`` requests are already waiting (with a
  ``retry_after_s`` hint estimated from recent wave latency), or
  :class:`~repro.exceptions.ServerClosedError` once the queue is
  closed or draining.  An overloaded server answers fast; it never
  hangs a connection.
* **Micro-batching.**  ``max_in_flight`` dispatcher threads drain the
  queue in *waves*: concurrent small requests (the 1–100-row shape
  millions of users produce) are concatenated into one matrix of at
  most ``max_wave_rows`` rows and answered by a single ``execute``
  call — which is the server's chunked predict dispatch, so one wave
  fans out across the persistent pool via
  :func:`repro.engine.chunking.chunk_ranges` exactly like one large
  batch.  Row order within a wave is submission order, so the labels
  split back per request by offset; batching never changes a label.
* **Deadlines.**  With ``deadline_ms`` configured, a submitter waits at
  most that long — covering queue time *and* execution — then raises
  :class:`~repro.exceptions.DeadlineExceededError` and abandons the
  request (a wave already executing completes harmlessly; its result
  is discarded).  Requests found expired while still queued are
  answered with the same error without ever touching the pool.

The queue is transport-agnostic: ``ModelServer`` routes ``predict``
through it whenever its :class:`~repro.api.ResilienceSpec` is set, so
NDJSON, HTTP and in-process callers share one overload story.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ServerClosedError,
)

__all__ = ["AdmissionQueue"]

#: Reasons recorded on ``repro_queue_rejections_total``.
REJECTION_REASONS = ("queue_full", "deadline", "closed")

#: Floor/ceiling on the ``Retry-After`` estimate (seconds).
_MIN_RETRY_AFTER_S = 0.05
_MAX_RETRY_AFTER_S = 30.0

#: Cold-start value of the wave-latency EWMA, and the resting point the
#: estimate decays back to while the server sits idle.
_EWMA_SEED_WAVE_S = 0.1

#: Half-life of that idle decay: every this-many idle seconds the
#: EWMA's distance from the seed halves.
_RETRY_DECAY_HALFLIFE_S = 5.0


class _Pending:
    """One queued request: its matrix, its deadline, its outcome."""

    __slots__ = ("X", "n_rows", "deadline", "event", "labels", "error", "abandoned")

    def __init__(self, X: np.ndarray, deadline: float | None):
        self.X = X
        self.n_rows = int(X.shape[0])
        self.deadline = deadline
        self.event = threading.Event()
        self.labels: np.ndarray | None = None
        self.error: BaseException | None = None
        self.abandoned = False

    def fulfil(self, labels: np.ndarray | None, error: BaseException | None) -> None:
        self.labels = labels
        self.error = error
        self.event.set()


class AdmissionQueue:
    """Bounded request queue + micro-batch dispatcher (see module doc).

    Parameters
    ----------
    execute:
        ``execute(matrix) -> labels`` — the raw (already-validated)
        predict dispatch.  Called from dispatcher threads, at most
        ``max_in_flight`` concurrently.
    max_queue_depth:
        Requests allowed to wait; the next one is rejected.
    max_in_flight:
        Dispatcher threads, i.e. concurrent predict waves.
    max_wave_rows:
        Row cap per concatenated wave (the server passes its
        ``max_batch``, which also bounds the process-backend request
        buffer).
    deadline_ms:
        Per-request deadline covering queue wait + execution
        (``None``: requests wait indefinitely).
    batch_window_ms:
        Extra linger after the first request of a wave arrives, giving
        concurrent submitters time to coalesce.  ``0`` (default) drains
        only what is already queued — no added latency when idle.
    registry:
        A :class:`~repro.obs.MetricsRegistry` for the queue-depth
        gauge, wave histograms and rejection counters (``None``: no
        metrics).
    clock:
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        execute: Callable[[np.ndarray], np.ndarray],
        *,
        max_queue_depth: int,
        max_in_flight: int,
        max_wave_rows: int,
        deadline_ms: int | None = None,
        batch_window_ms: int = 0,
        registry=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._execute = execute
        self._max_queue_depth = int(max_queue_depth)
        self._max_in_flight = int(max_in_flight)
        self._max_wave_rows = int(max_wave_rows)
        self._deadline_s = None if deadline_ms is None else deadline_ms / 1000.0
        self._window_s = batch_window_ms / 1000.0
        self._registry = registry
        self._clock = clock
        self._queue: deque[_Pending] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._busy = 0  # waves currently executing
        self._ewma_wave_s = _EWMA_SEED_WAVE_S  # seeds the Retry-After estimate
        self._last_wave_at = clock()  # anchors the idle decay
        if registry is not None:
            self._init_instruments()
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-admission-{i}",
                daemon=True,
            )
            for i in range(self._max_in_flight)
        ]
        for thread in self._threads:
            thread.start()

    # -- metrics ---------------------------------------------------------

    def _init_instruments(self) -> None:
        """Eagerly register the queue families (stable scrape schema)."""
        from repro.obs import DEFAULT_SIZE_BUCKETS

        registry = self._registry
        registry.gauge(
            "repro_queue_depth", help="Requests waiting for a predict wave."
        )
        for reason in REJECTION_REASONS:
            registry.counter(
                "repro_queue_rejections_total",
                help="Requests rejected by admission control, by reason.",
                labels={"reason": reason},
            )
        registry.counter(
            "repro_waves_total", help="Micro-batch predict waves executed."
        )
        for name, help_text in (
            ("repro_wave_requests", "Requests coalesced per predict wave."),
            ("repro_wave_rows", "Rows per concatenated predict wave."),
        ):
            registry.histogram(
                name, help=help_text, buckets=DEFAULT_SIZE_BUCKETS
            )

    def _set_depth(self, depth: int) -> None:
        if self._registry is not None:
            self._registry.gauge("repro_queue_depth").set(float(depth))

    def _count_rejection(self, reason: str) -> None:
        if self._registry is not None:
            self._registry.counter(
                "repro_queue_rejections_total", labels={"reason": reason}
            ).inc()

    def _observe_wave(self, n_requests: int, n_rows: int, elapsed_s: float) -> None:
        # EWMA of wave latency feeds the Retry-After estimate; cheap
        # and lock-free (a stale read only skews a hint).
        self._ewma_wave_s = 0.8 * self._ewma_wave_s + 0.2 * elapsed_s
        self._last_wave_at = self._clock()
        if self._registry is None:
            return
        from repro.obs import DEFAULT_SIZE_BUCKETS

        self._registry.counter("repro_waves_total").inc()
        self._registry.histogram(
            "repro_wave_requests", buckets=DEFAULT_SIZE_BUCKETS
        ).observe(float(n_requests))
        self._registry.histogram(
            "repro_wave_rows", buckets=DEFAULT_SIZE_BUCKETS
        ).observe(float(n_rows))

    # -- admission -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently waiting (excludes executing waves)."""
        with self._cond:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    def retry_after_s(self) -> float:
        """When a rejected client should try again (a coarse estimate).

        Current backlog times recent wave latency, spread across the
        dispatchers — clamped to a sane range so a cold or quiet
        server never advertises silly values.

        The wave-latency EWMA only moves when waves complete, so after
        a congested burst a naive estimate would keep advertising the
        burst's latency while the server sits empty.  Once the queue
        has drained and nothing is in flight, the EWMA decays toward
        its seed with half-life :data:`_RETRY_DECAY_HALFLIFE_S`, so
        the hint shrinks the longer the server has been quiet.
        """
        now = self._clock()
        if not self._queue and self._busy == 0:
            idle = now - self._last_wave_at
            if idle > 0.0:
                self._ewma_wave_s = _EWMA_SEED_WAVE_S + (
                    self._ewma_wave_s - _EWMA_SEED_WAVE_S
                ) * 0.5 ** (idle / _RETRY_DECAY_HALFLIFE_S)
                self._last_wave_at = now
        backlog = len(self._queue) + 1
        estimate = self._ewma_wave_s * backlog / self._max_in_flight
        return float(
            min(_MAX_RETRY_AFTER_S, max(_MIN_RETRY_AFTER_S, estimate))
        )

    def submit(self, X: np.ndarray, deadline_s: float | None = None) -> np.ndarray:
        """Queue one validated batch; block until labels or a verdict.

        Raises :class:`~repro.exceptions.OverloadedError` immediately
        on a full queue, :class:`~repro.exceptions.ServerClosedError`
        once closed, and
        :class:`~repro.exceptions.DeadlineExceededError` when the
        per-request deadline (``deadline_s`` override, else the
        configured ``deadline_ms``) expires first.
        """
        if deadline_s is None:
            deadline_s = self._deadline_s
        deadline = None if deadline_s is None else self._clock() + deadline_s
        with self._cond:
            if self._closed:
                self._count_rejection("closed")
                raise ServerClosedError(
                    "the admission queue is closed; this server is "
                    "shutting down"
                )
            if len(self._queue) >= self._max_queue_depth:
                retry_after = self.retry_after_s()
                self._count_rejection("queue_full")
                raise OverloadedError(
                    f"admission queue is full ({self._max_queue_depth} "
                    f"requests waiting); retry in ~{retry_after:.2f}s",
                    retry_after_s=retry_after,
                )
            pending = _Pending(X, deadline)
            self._queue.append(pending)
            self._set_depth(len(self._queue))
            self._cond.notify()
        timeout = None if deadline is None else max(0.0, deadline - self._clock())
        if not pending.event.wait(timeout):
            pending.abandoned = True
            self._count_rejection("deadline")
            raise DeadlineExceededError(
                f"request missed its {deadline_s * 1000:.0f}ms deadline "
                "(queue wait + execution); the result, if any, was "
                "discarded"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.labels is not None
        return pending.labels

    # -- dispatch --------------------------------------------------------

    def _take_wave(self) -> list[_Pending] | None:
        """Block for the next wave; ``None`` when closed and drained."""
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait()
            wave = [self._queue.popleft()]
            rows = wave[0].n_rows
            if self._window_s > 0 and not self._closed and not self._queue:
                # Linger briefly so concurrent submitters coalesce.
                linger_until = self._clock() + self._window_s
                while not self._queue and not self._closed:
                    remaining = linger_until - self._clock()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
            while self._queue and rows + self._queue[0].n_rows <= self._max_wave_rows:
                nxt = self._queue.popleft()
                wave.append(nxt)
                rows += nxt.n_rows
            self._set_depth(len(self._queue))
            self._busy += 1
            return wave

    def _dispatch_loop(self) -> None:
        while True:
            wave = self._take_wave()
            if wave is None:
                return
            try:
                self._run_wave(wave)
            finally:
                with self._cond:
                    self._busy -= 1
                    self._cond.notify_all()

    def _run_wave(self, wave: list[_Pending]) -> None:
        now = self._clock()
        live: list[_Pending] = []
        for pending in wave:
            if pending.abandoned or (
                pending.deadline is not None and now > pending.deadline
            ):
                # Expired while queued: answer without touching the pool.
                pending.fulfil(
                    None,
                    DeadlineExceededError(
                        "request expired while queued; it never reached "
                        "the pool"
                    ),
                )
            else:
                live.append(pending)
        if not live:
            return
        start = self._clock()
        try:
            if len(live) == 1:
                labels = self._execute(live[0].X)
                results = [labels]
            else:
                stacked = np.concatenate([pending.X for pending in live])
                labels = self._execute(stacked)
                offsets = np.cumsum([pending.n_rows for pending in live])[:-1]
                results = np.split(labels, offsets)
        except BaseException as exc:
            for pending in live:
                pending.fulfil(None, exc)
            return
        self._observe_wave(
            len(live), sum(p.n_rows for p in live), self._clock() - start
        )
        for pending, chunk in zip(live, results):
            pending.fulfil(chunk, None)

    # -- lifecycle -------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admitting; optionally drain what is queued, then reject.

        With ``drain=True`` the call blocks until every queued request
        and in-flight wave has been answered — bounded by ``timeout``
        seconds when given.  Anything still unanswered afterwards (and
        everything, with ``drain=False``) is fulfilled with
        :class:`~repro.exceptions.ServerClosedError`.  Idempotent.
        """
        with self._cond:
            already = self._closed
            self._closed = True
            self._cond.notify_all()
        if drain and not already:
            limit = None if timeout is None else self._clock() + timeout
            with self._cond:
                while self._queue or self._busy:
                    remaining = None if limit is None else limit - self._clock()
                    if remaining is not None and remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
        with self._cond:
            leftovers = list(self._queue)
            self._queue.clear()
            self._set_depth(0)
            self._cond.notify_all()
        for pending in leftovers:
            pending.fulfil(
                None,
                ServerClosedError(
                    "the server shut down before this request ran"
                ),
            )
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"depth={self.depth}"
        return (
            f"AdmissionQueue(max_queue_depth={self._max_queue_depth}, "
            f"max_in_flight={self._max_in_flight}, {state})"
        )
