"""repro.resilience — admission control, retries, and fault injection.

The serving stack's failure-handling toolkit, in three parts:

* :class:`AdmissionQueue` (``queue.py``) — bounded admission +
  micro-batching in front of :class:`repro.serve.ModelServer`;
* :class:`RetryPolicy` / :func:`retry_call` (``retry.py``) — capped
  exponential backoff with jitter, driving the pool-respawn loop in
  :class:`repro.engine.pool.PersistentPool`;
* :class:`FaultPlan` / :func:`inject_faults` (``faults.py``) —
  deterministic worker-kill/drop/delay injection for the chaos suite
  in ``tests/resilience/``.

Configuration lives in :class:`repro.api.ResilienceSpec`, hanging off
:class:`repro.api.ServeSpec`.
"""

from repro.resilience.faults import (
    FaultPlan,
    FaultState,
    InjectedPoolFault,
    active_faults,
    clear_faults,
    faulted_kernel,
    inject_faults,
    install_faults,
)
from repro.resilience.queue import AdmissionQueue
from repro.resilience.retry import RetryPolicy, compute_backoff_s, retry_call

__all__ = [
    "AdmissionQueue",
    "RetryPolicy",
    "compute_backoff_s",
    "retry_call",
    "FaultPlan",
    "FaultState",
    "InjectedPoolFault",
    "active_faults",
    "install_faults",
    "clear_faults",
    "inject_faults",
    "faulted_kernel",
]
