"""Capped exponential backoff with jitter, as a value object.

Every retry loop in the library — today the pool-respawn path in
:class:`repro.engine.pool.PersistentPool`, tomorrow a serving router's
shard retries — shares one policy shape: try, back off exponentially
from ``backoff_ms`` up to ``backoff_max_ms``, spread concurrent
retriers with multiplicative jitter, give up after ``max_retries``.
:class:`RetryPolicy` captures exactly that and nothing else; the loop
itself is :func:`retry_call`.

Determinism matters twice.  Chaos tests need reproducible schedules, so
a policy built with ``seed=`` draws its jitter from a private
:class:`random.Random` stream — two policies with the same seed produce
the same delays.  And production retries must never sleep longer than
the cap no matter the jitter draw, so the jittered delay is clamped to
``backoff_max_ms`` after the multiplication, not before.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.exceptions import ConfigurationError

__all__ = ["RetryPolicy", "compute_backoff_s", "retry_call"]


def compute_backoff_s(
    attempt: int, backoff_ms: float, backoff_max_ms: float
) -> float:
    """The un-jittered delay before retry ``attempt`` (1-based), in seconds.

    Doubles per attempt from ``backoff_ms``, capped at
    ``backoff_max_ms``:

    >>> [compute_backoff_s(a, 50, 1000) for a in (1, 2, 3, 4, 5, 6)]
    [0.05, 0.1, 0.2, 0.4, 0.8, 1.0]
    """
    if attempt < 1:
        raise ConfigurationError(f"attempt is 1-based, got {attempt}")
    delay_ms = min(backoff_max_ms, backoff_ms * (2.0 ** (attempt - 1)))
    return delay_ms / 1000.0


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to wait between tries.

    Parameters
    ----------
    max_retries:
        Retries *after* the first attempt (0 disables retrying while
        keeping the policy object usable).
    backoff_ms, backoff_max_ms:
        First-retry delay and the cap the doubling saturates at.
    jitter:
        Fractional spread: each delay is multiplied by a uniform draw
        from ``[1 - jitter, 1 + jitter]`` and re-clamped to the cap.
        ``0`` gives the exact deterministic doubling sequence.
    seed:
        Seeds the jitter stream for reproducible schedules (``None``:
        the process-global :mod:`random` state).
    """

    max_retries: int = 2
    backoff_ms: float = 50.0
    backoff_max_ms: float = 2000.0
    jitter: float = 0.1
    seed: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be a non-negative integer, got "
                f"{self.max_retries!r}"
            )
        for name in ("backoff_ms", "backoff_max_ms"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ConfigurationError(
                    f"{name} must be a non-negative number, got {value!r}"
                )
        if self.backoff_max_ms < self.backoff_ms:
            raise ConfigurationError(
                f"backoff_max_ms={self.backoff_max_ms} is below "
                f"backoff_ms={self.backoff_ms}; the cap cannot undercut "
                "the first delay"
            )
        if not isinstance(self.jitter, (int, float)) or not 0 <= self.jitter <= 1:
            raise ConfigurationError(
                f"jitter must be a fraction in [0, 1], got {self.jitter!r}"
            )

    def schedule(self) -> Iterator[float]:
        """Yield the jittered delay (seconds) for attempts 1, 2, 3, ...

        Each call returns a fresh stream; with ``seed`` set, every
        stream replays the same draws.
        """
        rng = random.Random(self.seed) if self.seed is not None else random
        attempt = 0
        while True:
            attempt += 1
            base = compute_backoff_s(attempt, self.backoff_ms, self.backoff_max_ms)
            if self.jitter:
                base *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            yield min(base, self.backoff_max_ms / 1000.0)


def retry_call(
    fn: Callable[[], "object"],
    policy: RetryPolicy,
    retry_on: tuple[type[BaseException], ...],
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn()`` under ``policy``, retrying on ``retry_on`` failures.

    ``on_retry(attempt, exc, delay_s)`` fires before each backoff sleep
    (attempt is 1-based); the final failure re-raises the last
    exception.  ``sleep`` is injectable so tests run without waiting.
    """
    schedule = policy.schedule()
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            attempt += 1
            if attempt > policy.max_retries:
                raise
            delay_s = next(schedule)
            if on_retry is not None:
                on_retry(attempt, exc, delay_s)
            if delay_s > 0:
                sleep(delay_s)
