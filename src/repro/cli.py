"""Command-line interface: ``python -m repro <command>``.

Six subcommands mirror the library's workflow:

* ``generate`` — materialise a synthetic dataset (datgen-style or
  Yahoo-style) to disk;
* ``cluster`` — run K-Modes or MH-K-Modes on a saved dataset and
  print the per-phase and per-iteration statistics; ``--spec`` loads
  an :class:`~repro.api.LSHSpec` / :class:`~repro.api.EngineSpec` /
  :class:`~repro.api.TrainSpec` triple from a JSON file (the
  ``to_dict`` round-trip format), individual flags — ``--bands``,
  ``--backend``, ``--jobs``, ``--shards``, ... — override spec-file
  fields, and ``--save`` persists the fitted model (npz + json
  sidecar);
* ``extend`` — bootstrap a :class:`~repro.core.StreamingMHKModes` on
  the head of a saved dataset and stream the rest in through the
  chunked batch-ingest pipeline, printing per-chunk phase timings
  (signatures / shortlist / walk / update / refresh) and items/s;
  ``--backend``/``--jobs`` route chunk hashing through a worker pool,
  bit-identical to serial;
* ``serve`` — load a saved model into a
  :class:`~repro.serve.ModelServer` and answer newline-delimited JSON
  predict requests over stdin/stdout, or over a localhost HTTP
  endpoint with ``--http PORT`` (``0`` picks a free port); a
  :class:`~repro.api.ServeSpec` persisted next to the model supplies
  the defaults, individual flags override, and ``--allow-extend``
  additionally accepts ``{"op": "extend"}`` streaming-ingest requests.
  ``--deadline-ms`` / ``--max-queue`` / ``--retries`` /
  ``--max-in-flight`` arm the admission-control layer
  (:class:`~repro.api.ResilienceSpec`): a bounded micro-batching queue
  with structured ``overloaded`` / ``deadline_exceeded`` errors, and
  worker-crash retry/degrade on the serving pool.  SIGTERM/SIGINT
  drain in-flight requests (bounded by the deadline) before a clean
  exit;
* ``compare`` — run a named paper experiment (fig2 … fig10) and print
  the paper-style tables (``--backend``/``--jobs`` apply to the MH
  variants);
* ``tables`` — print the analytic Tables I and II.

``cluster``, ``extend`` and ``serve`` share two observability flags:
``--trace`` streams JSON span events to stderr
(:func:`repro.obs.enable_tracing`) and ``--emit-metrics PATH`` writes
a :class:`~repro.obs.MetricsRegistry` snapshot as JSON when the
command finishes (``-`` for stdout).  ``serve --no-metrics`` disables
the per-request registry (``GET /metrics`` then answers 404).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "LSH-accelerated centroid-based clustering "
            "(reproduction of McConville et al., ICDE 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("output", help="output .npz path")
    gen.add_argument("--kind", choices=["datgen", "yahoo"], default="datgen")
    gen.add_argument("--items", type=int, default=5_000)
    gen.add_argument("--clusters", type=int, default=500)
    gen.add_argument("--attributes", type=int, default=60)
    gen.add_argument("--domain-size", type=int, default=40_000)
    gen.add_argument("--noise-rate", type=float, default=0.0)
    gen.add_argument("--tfidf-threshold", type=float, default=0.3)
    gen.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("cluster", help="cluster a saved dataset")
    run.add_argument("dataset", help="input .npz path")
    run.add_argument("--algorithm", choices=["kmodes", "mh-kmodes"], default="mh-kmodes")
    run.add_argument("--clusters", type=int, required=True)
    run.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help=(
            "JSON file with 'lsh' / 'engine' / 'train' spec objects "
            "(the repro.api to_dict format); individual flags below "
            "override spec-file fields"
        ),
    )
    run.add_argument("--bands", type=int, default=None, help="default: 20")
    run.add_argument("--rows", type=int, default=None, help="default: 5")
    run.add_argument("--max-iter", type=int, default=None, help="default: 100")
    run.add_argument("--absent-code", type=int, default=None)
    run.add_argument("--seed", type=int, default=None, help="default: 0")
    run.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="execution backend for the MH engine (default: serial)",
    )
    run.add_argument(
        "--update-refs",
        choices=["online", "batch"],
        default=None,
        help=(
            "cluster-reference update mode: 'online' is the paper's "
            "per-item pass, 'batch' runs the vectorised pass on any "
            "backend (default: online when serial, batch when parallel)"
        ),
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for parallel backends (default: one per CPU)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="index shard count (default: one per worker when parallel)",
    )
    run.add_argument(
        "--save",
        default=None,
        metavar="PATH",
        help="persist the fitted model as PATH.npz + PATH.json",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="emit JSON span/trace events to stderr (one object per line)",
    )
    run.add_argument(
        "--emit-metrics",
        default=None,
        metavar="PATH",
        help=(
            "write a JSON metrics-registry snapshot to PATH when the "
            "command finishes ('-' for stdout)"
        ),
    )

    ext = sub.add_parser(
        "extend", help="stream a saved dataset into a bootstrapped model"
    )
    ext.add_argument("dataset", help="input .npz path")
    ext.add_argument("--clusters", type=int, required=True)
    ext.add_argument(
        "--bootstrap",
        type=int,
        default=None,
        help="items fitted before streaming starts (default: half)",
    )
    ext.add_argument(
        "--stream-chunk",
        type=int,
        default=4096,
        metavar="ITEMS",
        help="arrivals ingested per extend() call (default: 4096)",
    )
    ext.add_argument("--bands", type=int, default=None, help="default: 20")
    ext.add_argument("--rows", type=int, default=None, help="default: 5")
    ext.add_argument("--max-iter", type=int, default=None, help="default: 100")
    ext.add_argument("--seed", type=int, default=0)
    ext.add_argument("--absent-code", type=int, default=None)
    ext.add_argument(
        "--refresh-interval",
        type=int,
        default=200,
        help="streamed arrivals between mode refreshes (default: 200)",
    )
    ext.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="chunk-hashing backend for extend() (default: serial)",
    )
    ext.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for parallel extend backends (default: one per CPU)",
    )
    ext.add_argument(
        "--trace",
        action="store_true",
        help="emit JSON span/trace events to stderr (one object per line)",
    )
    ext.add_argument(
        "--emit-metrics",
        default=None,
        metavar="PATH",
        help=(
            "write a JSON metrics-registry snapshot to PATH when the "
            "command finishes ('-' for stdout)"
        ),
    )

    srv = sub.add_parser("serve", help="serve a saved model")
    srv.add_argument("model", help="saved model path (.npz + .json sidecar)")
    srv.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="serving backend (default: the model's saved ServeSpec, else serial)",
    )
    srv.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for parallel serving backends (default: one per CPU)",
    )
    srv.add_argument(
        "--chunk-items",
        type=int,
        default=None,
        help="rows per worker task when chunking a batch (default: 2048)",
    )
    srv.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="largest request accepted, in rows (default: 8192)",
    )
    srv.add_argument(
        "--allow-extend",
        action="store_true",
        help=(
            "accept {\"op\": \"extend\"} streaming-ingest requests (the "
            "index absorbs the rows; serial/thread backends only)"
        ),
    )
    srv.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help=(
            "per-request deadline (queue wait + execution); expired "
            "requests answer 504 deadline_exceeded.  Setting any "
            "resilience flag routes predict through the bounded "
            "admission queue"
        ),
    )
    srv.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help=(
            "requests allowed to wait for a predict wave before new "
            "ones answer 429 overloaded (default: 64)"
        ),
    )
    srv.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "pool-respawn retries after a worker death before the "
            "degrade policy applies (default: 2)"
        ),
    )
    srv.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        metavar="N",
        help="concurrent micro-batch predict waves (default: 2)",
    )
    srv.add_argument(
        "--no-metrics",
        action="store_true",
        help=(
            "disable the serving metrics registry (GET /metrics answers "
            "404; /health drops the latency percentiles)"
        ),
    )
    srv.add_argument(
        "--trace",
        action="store_true",
        help="emit JSON span/trace events to stderr (one object per line)",
    )
    srv.add_argument(
        "--emit-metrics",
        default=None,
        metavar="PATH",
        help=(
            "write a JSON metrics-registry snapshot to PATH when the "
            "command finishes ('-' for stdout)"
        ),
    )
    srv.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve over localhost HTTP on PORT (0 picks a free port) "
            "instead of newline-delimited JSON on stdin/stdout"
        ),
    )

    cmp_ = sub.add_parser("compare", help="run a paper experiment")
    cmp_.add_argument(
        "experiment",
        help="experiment id: fig2, fig3, fig4, fig5, fig5xl, fig9, fig10",
    )
    cmp_.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default="serial",
        help="execution backend for the MH variants (default: serial)",
    )
    cmp_.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for parallel backends (default: one per CPU)",
    )

    sub.add_parser("tables", help="print the paper's Tables I and II")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data import (
        RuleBasedGenerator,
        YahooAnswersSynthesizer,
        corpus_to_dataset,
        save_dataset,
    )

    if args.kind == "datgen":
        dataset = RuleBasedGenerator(
            n_clusters=args.clusters,
            n_attributes=args.attributes,
            domain_size=args.domain_size,
            noise_rate=args.noise_rate,
            seed=args.seed,
        ).generate(args.items)
    else:
        corpus = YahooAnswersSynthesizer(
            n_topics=args.clusters, seed=args.seed
        ).generate(args.items)
        dataset = corpus_to_dataset(corpus, tfidf_threshold=args.tfidf_threshold)
    path = save_dataset(dataset, args.output)
    print(f"wrote {dataset.describe()} to {path}")
    return 0


def _load_spec_file(path: str) -> dict:
    """Parse a ``--spec`` JSON file into its raw section dicts."""
    from repro.exceptions import ConfigurationError

    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"no such spec file: {path}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ConfigurationError(f"{path} must hold a JSON object")
    unknown = set(data) - {"lsh", "engine", "train"}
    if unknown:
        raise ConfigurationError(
            f"unknown spec section(s) {sorted(unknown)} in {path}; "
            "expected 'lsh', 'engine', 'train'"
        )
    return data


def _resolve_cluster_specs(args: argparse.Namespace):
    """Merge ``--spec`` file values with per-flag overrides (flags win)."""
    from repro.api import EngineSpec, LSHSpec, TrainSpec

    data = _load_spec_file(args.spec) if args.spec is not None else {}
    lsh = LSHSpec.from_dict(data.get("lsh", {}))
    engine = EngineSpec.from_dict(data.get("engine", {}))
    train = TrainSpec.from_dict(data.get("train", {}))
    lsh_overrides = {
        key: value
        for key, value in (
            ("bands", args.bands),
            ("rows", args.rows),
            ("seed", args.seed),
        )
        if value is not None
    }
    # The CLI's historic default seed is 0 (reproducible runs), not the
    # spec default of None; it applies unless the flag or the spec file
    # explicitly sets a seed (an explicit "seed": null in the file asks
    # for a randomly seeded run and is honoured).
    if "seed" not in lsh_overrides and "seed" not in data.get("lsh", {}):
        lsh_overrides["seed"] = 0
    engine_overrides = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("n_jobs", args.jobs),
            ("n_shards", args.shards),
        )
        if value is not None
    }
    # A --backend override away from 'process' drops a spec-file
    # start_method along with the backend it configured.
    if (
        args.backend is not None
        and args.backend != "process"
        and engine.start_method is not None
    ):
        engine_overrides["start_method"] = None
    train_overrides = {
        key: value
        for key, value in (
            ("max_iter", args.max_iter),
            ("update_refs", args.update_refs),
        )
        if value is not None
    }
    return (
        lsh.replace(**lsh_overrides),
        engine.replace(**engine_overrides),
        train.replace(**train_overrides),
    )


def _enable_observability(args: argparse.Namespace) -> None:
    """Honour ``--trace`` before the command body starts timing."""
    if getattr(args, "trace", False):
        from repro.obs import enable_tracing

        enable_tracing()


def _write_metrics_snapshot(
    args: argparse.Namespace, snapshot: dict | None = None
) -> None:
    """Honour ``--emit-metrics PATH`` after the command body finishes.

    ``snapshot`` lets ``serve`` pass its per-server registry view;
    everything else dumps the process-default registry.
    """
    path = getattr(args, "emit_metrics", None)
    if path is None:
        return
    if snapshot is None:
        from repro.obs import metrics

        snapshot = metrics().snapshot()
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        Path(path).write_text(text + "\n", encoding="utf-8")
        print(f"metrics   : wrote snapshot to {path}", file=sys.stderr)


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.core import MHKModes
    from repro.data import load_dataset, save_model
    from repro.kmodes import KModes
    from repro.metrics import cluster_purity
    from repro.obs import format_phase_timings

    _enable_observability(args)
    dataset = load_dataset(args.dataset)
    lsh, engine, train = _resolve_cluster_specs(args)
    if args.algorithm == "mh-kmodes" and engine.backend == "serial" and engine.n_jobs:
        print(
            "warning: --jobs has no effect with the serial backend; "
            "pass --backend thread or --backend process",
            file=sys.stderr,
        )
    if args.algorithm == "kmodes":
        if engine.backend != "serial" or engine.n_jobs is not None or engine.n_shards is not None:
            print(
                "warning: --backend/--jobs/--shards apply to mh-kmodes only; "
                "the exhaustive kmodes baseline runs in-process",
                file=sys.stderr,
            )
        model: KModes | MHKModes = KModes(
            n_clusters=args.clusters, max_iter=train.max_iter, seed=lsh.seed
        )
    else:
        model = MHKModes(
            n_clusters=args.clusters,
            lsh=lsh,
            engine=engine,
            train=train,
            absent_code=args.absent_code,
        )
    model.fit(dataset.X)
    assert model.stats_ is not None and model.labels_ is not None
    print(f"dataset   : {dataset.describe()}")
    print(f"algorithm : {model.stats_.algorithm}")
    if args.algorithm == "mh-kmodes":
        from repro.kernels import active_backend

        jobs = engine.n_jobs if engine.n_jobs is not None else "auto"
        print(
            f"engine    : backend={engine.backend} jobs={jobs} "
            f"update_refs={model.update_refs}"
        )
        print(f"kernels   : {active_backend()}")
    print(f"iterations: {model.n_iter_} (converged={model.converged_})")
    print(f"setup     : {model.stats_.setup_s:.3f}s")
    if model.stats_.phase_s:
        print(f"phases    : {format_phase_timings(model.stats_.phase_s)}")
    print(f"total     : {model.stats_.total_time_s:.3f}s")
    print(f"cost      : {model.cost_:.0f}")
    print(f"purity    : {cluster_purity(model.labels_, dataset.labels):.4f}")
    for it in model.stats_.iterations:
        shortlist = (
            f" shortlist={it.mean_shortlist:8.2f}"
            if not np.isnan(it.mean_shortlist)
            else ""
        )
        print(
            f"  iter {it.iteration:3d}: {it.duration_s:7.3f}s "
            f"moves={it.moves:6d}{shortlist}"
        )
    if args.save is not None:
        saved = save_model(model, args.save)
        print(f"saved     : {saved} (+ {saved.with_suffix('.json').name})")
    _write_metrics_snapshot(args)
    return 0


def _cmd_extend(args: argparse.Namespace) -> int:
    from repro.api import LSHSpec, StreamSpec, TrainSpec
    from repro.core.streaming import StreamingMHKModes
    from repro.data import load_dataset
    from repro.instrumentation import Timer
    from repro.metrics import cluster_purity
    from repro.obs import format_phase_timings

    _enable_observability(args)
    dataset = load_dataset(args.dataset)
    n_items = dataset.X.shape[0]
    split = args.bootstrap if args.bootstrap is not None else n_items // 2
    if not 0 < split < n_items:
        print(
            f"--bootstrap must leave items to stream (dataset has "
            f"{n_items} items, got {split})",
            file=sys.stderr,
        )
        return 2
    lsh = LSHSpec(
        bands=args.bands if args.bands is not None else 20,
        rows=args.rows if args.rows is not None else 5,
        seed=args.seed,
    )
    train = (
        TrainSpec(max_iter=args.max_iter)
        if args.max_iter is not None
        else TrainSpec()
    )
    stream_spec = StreamSpec(
        backend=args.backend if args.backend is not None else "serial",
        n_jobs=args.jobs,
        chunk_items=args.stream_chunk,
    )
    estimator = StreamingMHKModes(
        n_clusters=args.clusters,
        lsh=lsh,
        train=train,
        stream=stream_spec,
        absent_code=args.absent_code,
        refresh_interval=args.refresh_interval,
    )
    from repro.kernels import active_backend

    print(f"dataset   : {dataset.describe()}")
    print(
        f"stream    : backend={stream_spec.backend} "
        f"jobs={stream_spec.n_jobs if stream_spec.n_jobs is not None else 'auto'} "
        f"chunk={stream_spec.chunk_items} refresh={args.refresh_interval}"
    )
    print(f"kernels   : {active_backend()}")
    with estimator:
        with Timer() as boot_timer:
            estimator.bootstrap(dataset.X[:split])
        print(f"bootstrap : {split} items in {boot_timer.elapsed_s:.3f}s")
        streamed = 0
        streamed_s = 0.0
        labels_parts = []
        for start in range(split, n_items, args.stream_chunk):
            stop = min(start + args.stream_chunk, n_items)
            with Timer() as chunk_timer:
                labels_parts.append(estimator.extend(dataset.X[start:stop]))
            seconds = chunk_timer.elapsed_s
            streamed += stop - start
            streamed_s += seconds
            phases = format_phase_timings(estimator.extend_stats_)
            print(
                f"  chunk {start:>7}..{stop:<7} {stop - start:6d} items "
                f"{seconds:7.3f}s {(stop - start) / seconds:9.0f} items/s  "
                f"{phases}"
            )
        rate = streamed / streamed_s if streamed_s else float("inf")
        print(
            f"streamed  : {streamed} items in {streamed_s:.3f}s "
            f"({rate:.0f} items/s); fallbacks={estimator.n_fallbacks_}"
        )
        if dataset.labels is not None:
            streamed_labels = np.concatenate(labels_parts)
            purity = cluster_purity(streamed_labels, dataset.labels[split:])
            print(f"purity    : {purity:.4f} (streamed items)")
    _write_metrics_snapshot(args)
    return 0


class _ShutdownSignal(Exception):
    """SIGTERM/SIGINT turned into a catchable graceful-exit request."""


def _install_shutdown_handlers() -> None:
    """Make SIGTERM/SIGINT raise :class:`_ShutdownSignal` in the main thread.

    ``repro serve`` then drains in-flight requests (bounded by any
    configured deadline), refuses new ones with 503 and exits 0 —
    instead of dying mid-response.  No-op when not in the main thread
    (in-process tests drive ``serve_ndjson`` directly).
    """
    import signal

    def handler(signum, frame):
        raise _ShutdownSignal(signum)

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, handler)
        except ValueError:  # pragma: no cover - not the main thread
            pass


def _resolve_serve_spec(args: argparse.Namespace, spec):
    """Apply ``repro serve`` flag overrides to the (loaded) ServeSpec."""
    from repro.api import ResilienceSpec

    overrides = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("n_jobs", args.jobs),
            ("chunk_items", args.chunk_items),
            ("max_batch", args.max_batch),
        )
        if value is not None
    }
    if args.allow_extend:
        overrides["allow_extend"] = True
    if args.no_metrics:
        overrides["emit_metrics"] = False
    resilience_overrides = {
        key: value
        for key, value in (
            ("deadline_ms", args.deadline_ms),
            ("max_queue_depth", args.max_queue),
            ("max_retries", args.retries),
            ("max_in_flight", args.max_in_flight),
        )
        if value is not None
    }
    if resilience_overrides:
        # Any resilience flag turns admission control on, extending a
        # persisted ResilienceSpec when the model was saved with one.
        base = spec.resilience if spec.resilience is not None else ResilienceSpec()
        overrides["resilience"] = base.replace(**resilience_overrides)
    return spec.replace(**overrides)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import ServeSpec
    from repro.data.io import load_cluster_model, load_serve_spec
    from repro.serve import ModelServer, make_http_server, serve_ndjson

    _enable_observability(args)
    _install_shutdown_handlers()
    model = load_cluster_model(args.model)
    spec = _resolve_serve_spec(args, load_serve_spec(args.model) or ServeSpec())
    with ModelServer(model, spec) as server:
        # The context manager is the graceful-shutdown path: __exit__
        # runs ModelServer.close(), which refuses new requests with
        # 503/shutting_down, drains the admission queue (bounded by the
        # deadline) and then tears the pool down.
        if args.http is not None:
            httpd = make_http_server(server, port=args.http)
            host, port = httpd.server_address[:2]
            # The ready line goes to stdout (unused by this transport)
            # so a supervising process can parse the bound port.
            print(f"serving {model!r} on http://{host}:{port}", flush=True)
            try:
                httpd.serve_forever()
            except (KeyboardInterrupt, _ShutdownSignal):
                print(
                    "shutting down: draining in-flight requests",
                    file=sys.stderr,
                    flush=True,
                )
            finally:
                httpd.server_close()
        else:
            # stdout is the response channel; the ready line goes to
            # stderr so it never interleaves with NDJSON responses.
            print(f"serving {model!r} on stdin/stdout (ndjson)", file=sys.stderr, flush=True)
            try:
                answered = serve_ndjson(server, sys.stdin, sys.stdout)
                print(f"served {answered} request(s)", file=sys.stderr)
            except (KeyboardInterrupt, _ShutdownSignal):
                print(
                    "shutting down: draining in-flight requests",
                    file=sys.stderr,
                    flush=True,
                )
        _write_metrics_snapshot(args, server.metrics_snapshot())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments import (
        EXPERIMENTS,
        SyntheticConfig,
        render_comparison_summary,
        render_series_table,
        run_synthetic_experiment,
        run_yahoo_experiment,
    )

    config = EXPERIMENTS.get(args.experiment)
    if config is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    if args.backend == "serial" and args.jobs:
        print(
            "warning: --jobs has no effect with the serial backend; "
            "pass --backend thread or --backend process",
            file=sys.stderr,
        )
    config = config.scaled(backend=args.backend, n_jobs=args.jobs)
    print(config.description)
    if args.backend != "serial":
        jobs = args.jobs if args.jobs is not None else "auto"
        print(f"engine: backend={args.backend} jobs={jobs} (MH variants)")
    if isinstance(config, SyntheticConfig):
        result = run_synthetic_experiment(config)
    else:
        result = run_yahoo_experiment(config)
    print(render_comparison_summary(result))
    print()
    for fieldname in ("duration_s", "mean_shortlist", "moves"):
        print(render_series_table(result, fieldname))
        print()
    return 0


def _cmd_tables(_: argparse.Namespace) -> int:
    from repro.core.parameters import probability_table
    from repro.experiments.report import render_probability_table

    table1 = probability_table(
        rows=1,
        band_choices=[10, 100, 800],
        similarities=[0.0001, 0.001, 0.01, 0.1, 0.2, 0.5, 0.8],
    )
    table2 = probability_table(
        rows=5,
        band_choices=[10, 100, 800],
        similarities=[0.1, 0.2, 0.3, 0.5, 0.8],
    )
    print(render_probability_table(table1, "Table I (rows=1, cluster size 10)"))
    print()
    print(render_probability_table(table2, "Table II (rows=5, cluster size 10)"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "cluster": _cmd_cluster,
        "extend": _cmd_extend,
        "serve": _cmd_serve,
        "compare": _cmd_compare,
        "tables": _cmd_tables,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
