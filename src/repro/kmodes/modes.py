"""Mode computation — the centroid update of K-Modes.

The mode of a cluster is, column by column, its most frequent category
value; the paper's Section III-A1 shows this is exactly the vector Q
minimising D(X, Q) (Equation 3).  Computing modes naively (one
``np.unique`` per cluster per column) costs k·m small kernel launches;
instead we fuse all clusters of one column into a single sort by
encoding ``(cluster, value)`` pairs as one integer — one ``np.unique``
per column regardless of k.

Ties are broken towards the smallest category code, which makes mode
computation fully deterministic (important for reproducing runs and
for the MH-vs-exact equivalence tests).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError, EmptyClusterError

__all__ = ["compute_modes", "column_mode"]


def column_mode(values: np.ndarray) -> int:
    """Most frequent value of a 1-D integer array (smallest wins ties).

    Examples
    --------
    >>> column_mode(np.array([3, 1, 3, 2, 1]))
    1
    """
    values = np.asarray(values)
    if values.ndim != 1 or values.size == 0:
        raise DataValidationError("column_mode requires a non-empty 1-D array")
    uniques, counts = np.unique(values, return_counts=True)
    # np.unique returns sorted uniques, so argmax's first-hit rule
    # already selects the smallest value among equal counts.
    return int(uniques[np.argmax(counts)])


def compute_modes(
    X: np.ndarray,
    labels: np.ndarray,
    n_clusters: int,
    previous_modes: np.ndarray | None = None,
    empty_policy: str = "keep",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Frequency-based mode update for every cluster at once.

    Parameters
    ----------
    X:
        ``(n, m)`` categorical code matrix.
    labels:
        ``(n,)`` cluster id per item, values in ``[0, n_clusters)``.
    n_clusters:
        Number of clusters k.
    previous_modes:
        ``(k, m)`` modes from the previous iteration; required by the
        ``'keep'`` empty-cluster policy.
    empty_policy:
        What to do with clusters that currently have no members:

        * ``'keep'`` — retain the previous mode (default; a later
          iteration may repopulate the cluster);
        * ``'reinit'`` — draw a random item as the new mode;
        * ``'error'`` — raise :class:`EmptyClusterError`.
    rng:
        Generator for the ``'reinit'`` policy.

    Returns
    -------
    numpy.ndarray
        ``(n_clusters, m)`` mode matrix, dtype of ``X``.
    """
    X = np.asarray(X)
    labels = np.asarray(labels)
    if X.ndim != 2:
        raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
    if labels.ndim != 1 or len(labels) != len(X):
        raise DataValidationError(
            f"labels must be 1-D with one entry per item; got {labels.shape} "
            f"for {len(X)} items"
        )
    if n_clusters <= 0:
        raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_clusters):
        raise DataValidationError(
            f"labels outside [0, {n_clusters}): min={labels.min()}, max={labels.max()}"
        )
    if empty_policy not in ("keep", "reinit", "error"):
        raise ConfigurationError(
            f"empty_policy must be 'keep', 'reinit' or 'error', got {empty_policy!r}"
        )

    n, m = X.shape
    counts = np.bincount(labels, minlength=n_clusters)
    empty = np.flatnonzero(counts == 0)
    if empty.size and empty_policy == "error":
        raise EmptyClusterError(
            f"{empty.size} cluster(s) have no members: {empty[:10].tolist()}"
        )

    modes = np.empty((n_clusters, m), dtype=X.dtype)
    value_span = int(X.max()) + 1 if X.size else 1
    labels64 = labels.astype(np.int64)
    for j in range(m):
        # Encode (cluster, value) pairs into single integers so one
        # np.unique covers every cluster's histogram for this column.
        pairs = labels64 * value_span + X[:, j].astype(np.int64)
        uniques, pair_counts = np.unique(pairs, return_counts=True)
        pair_clusters = uniques // value_span
        pair_values = uniques % value_span
        # Sort by (cluster asc, count asc, value desc); the last entry
        # of each cluster's run is then its most frequent value, with
        # ties resolved towards the smallest value code.
        order = np.lexsort((-pair_values, pair_counts, pair_clusters))
        sorted_clusters = pair_clusters[order]
        run_ends = np.flatnonzero(
            np.r_[sorted_clusters[1:] != sorted_clusters[:-1], True]
        )
        modes[sorted_clusters[run_ends], j] = pair_values[order][run_ends].astype(
            X.dtype
        )

    if empty.size:
        if empty_policy == "keep":
            if previous_modes is None:
                raise ConfigurationError(
                    "empty_policy='keep' requires previous_modes when a "
                    "cluster has no members"
                )
            previous_modes = np.asarray(previous_modes)
            if previous_modes.shape != (n_clusters, m):
                raise DataValidationError(
                    f"previous_modes shape {previous_modes.shape} != "
                    f"({n_clusters}, {m})"
                )
            modes[empty] = previous_modes[empty]
        else:  # 'reinit'
            if rng is None:
                rng = np.random.default_rng()
            replacement = rng.integers(0, n, size=empty.size)
            modes[empty] = X[replacement]
    return modes
