"""The K-Modes estimator (Huang 1998) — exhaustive baseline.

Batch K-Modes as described in Section III-A1 of the paper:

1. select k initial modes;
2. assign every item to the cluster whose mode has the smallest
   matching dissimilarity — against **all k modes** (the bottleneck
   the paper attacks);
3. recompute every cluster's mode;
4. repeat 2-3 until no item changes cluster or ``max_iter`` is hit.

Determinism: given a seed (or explicit ``initial_modes``) the run is
fully reproducible.  Ties in the assignment step keep the item's
current cluster when it participates in the tie and otherwise go to the
lowest cluster id, which guarantees the no-moves termination criterion
is reachable.
"""

from __future__ import annotations

import numpy as np

from repro.api.protocol import EstimatorProtocol
from repro.api.registry import register_estimator
from repro.api.specs import EngineSpec, TrainSpec
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    check_fitted,
)
from repro.instrumentation import RunStats, Timer
from repro.kmodes.cost import clustering_cost
from repro.kmodes.initialization import resolve_init
from repro.kmodes.modes import compute_modes

__all__ = ["KModes"]


@register_estimator("kmodes")
class KModes(EstimatorProtocol):
    """Exhaustive K-Modes clustering for categorical data.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    init:
        Initialisation method: ``'random'`` (paper default), ``'huang'``
        or ``'cao'``.  Ignored when ``fit`` receives ``initial_modes``.
    max_iter:
        Iteration cap; the run may stop earlier on convergence.
    seed:
        Seed controlling initialisation.
    empty_cluster_policy:
        Passed to :func:`repro.kmodes.modes.compute_modes`:
        ``'keep'`` (default), ``'reinit'`` or ``'error'``.
    track_cost:
        Record P(W, Q) each iteration (small extra cost; on by default).
    chunk_items:
        Items per chunk in the exhaustive assignment step.  Bounds the
        ``(chunk, k, m)`` comparison tensor; tune down if memory-bound.

    Attributes
    ----------
    modes_:
        ``(k, m)`` fitted cluster modes.
    labels_:
        ``(n,)`` cluster id per training item.
    cost_:
        Final P(W, Q).
    n_iter_:
        Iterations executed.
    converged_:
        True if the run stopped because no item moved.
    stats_:
        :class:`repro.instrumentation.RunStats` with the per-iteration
        series (time, moves, cost) the paper plots.

    Examples
    --------
    >>> X = np.array([[0, 1], [0, 1], [5, 9], [5, 9]])
    >>> km = KModes(n_clusters=2, seed=0).fit(X)
    >>> sorted(np.bincount(km.labels_).tolist())
    [2, 2]
    """

    _centroid_attr = "_modes"

    def __init__(
        self,
        n_clusters: int,
        init: str = "random",
        max_iter: int = 100,
        seed: int | None = None,
        empty_cluster_policy: str = "keep",
        track_cost: bool = True,
        chunk_items: int = 256,
    ):
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be positive, got {max_iter}")
        if chunk_items <= 0:
            raise ConfigurationError(f"chunk_items must be positive, got {chunk_items}")
        resolve_init(init)  # fail fast on unknown names
        self.n_clusters = int(n_clusters)
        self.init = init
        self.max_iter = int(max_iter)
        self.seed = seed
        self.empty_cluster_policy = empty_cluster_policy
        self.track_cost = bool(track_cost)
        self.chunk_items = int(chunk_items)

        self.cost_: float = float("nan")
        self.n_iter_: int = 0
        self.converged_: bool = False
        self._modes: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._stats: RunStats | None = None

    # ------------------------------------------------------------------
    # fitted state (NotFittedError before fit)
    # ------------------------------------------------------------------

    def _is_fitted(self) -> bool:
        return self._modes is not None

    @property
    def modes_(self) -> np.ndarray:
        """``(k, m)`` fitted cluster modes."""
        check_fitted(self)
        return self._modes

    @property
    def labels_(self) -> np.ndarray:
        """``(n,)`` cluster id per training item."""
        check_fitted(self)
        return self._labels

    @property
    def stats_(self) -> RunStats | None:
        """Fit statistics (``None`` on estimators restored from disk)."""
        check_fitted(self)
        return self._stats

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, initial_modes: np.ndarray | None = None) -> "KModes":
        """Cluster ``X`` and populate the fitted attributes.

        Parameters
        ----------
        X:
            ``(n, m)`` matrix of non-negative integer category codes.
        initial_modes:
            Optional explicit ``(k, m)`` starting modes.  The paper
            fixes these across algorithm variants so initialisation
            cannot influence the comparison; pass the same array to
            :class:`repro.core.MHKModes` to replicate that protocol.
        """
        X = self._validate_X(X)
        rng = np.random.default_rng(self.seed)
        modes = self._initial_modes(X, initial_modes, rng)

        n = X.shape[0]
        labels = np.full(n, -1, dtype=np.int64)
        stats = RunStats(algorithm="K-Modes")
        converged = False

        for _ in range(self.max_iter):
            with Timer() as timer:
                new_labels, moves = self._assign(X, modes, labels)
                modes = compute_modes(
                    X,
                    new_labels,
                    self.n_clusters,
                    previous_modes=modes,
                    empty_policy=self.empty_cluster_policy,
                    rng=rng,
                )
                labels = new_labels
            cost = (
                clustering_cost(X, modes, labels) if self.track_cost else float("nan")
            )
            empty = self.n_clusters - len(np.unique(labels))
            stats.record(
                duration_s=timer.elapsed_s,
                moves=moves,
                cost=cost,
                mean_shortlist=float(self.n_clusters),
                n_empty_clusters=empty,
            )
            if moves == 0:
                converged = True
                break

        stats.converged = converged
        self._modes = modes
        self._labels = labels
        self.cost_ = float(clustering_cost(X, modes, labels))
        self.n_iter_ = stats.n_iterations
        self.converged_ = converged
        self._stats = stats
        return self

    def fit_predict(self, X: np.ndarray, initial_modes: np.ndarray | None = None) -> np.ndarray:
        """Fit and return the training labels."""
        self.fit(X, initial_modes=initial_modes)
        assert self.labels_ is not None
        return self.labels_

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new items to the nearest fitted mode (exhaustively)."""
        check_fitted(self)
        X = self._validate_predict_X(X)
        if X.shape[1] != self.modes_.shape[1]:
            raise DataValidationError(
                f"X has {X.shape[1]} attributes but the model was fitted "
                f"with {self.modes_.shape[1]}"
            )
        if X.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        labels, _ = self._assign(X, self.modes_, np.full(len(X), -1, dtype=np.int64))
        return labels

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2 or X.size == 0:
            raise DataValidationError("X must be a non-empty 2-D matrix")
        if not np.issubdtype(X.dtype, np.integer):
            raise DataValidationError(
                f"X must hold integer category codes, got dtype {X.dtype}; "
                "use repro.data.encoding.CategoricalEncoder for raw values"
            )
        if X.min() < 0:
            raise DataValidationError("category codes must be non-negative")
        # Canonical int64 C-order so dtype/contiguity variants of the
        # same codes produce identical distances and labels.
        return np.ascontiguousarray(X, dtype=np.int64)

    def _initial_modes(
        self,
        X: np.ndarray,
        initial_modes: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if initial_modes is not None:
            initial_modes = np.asarray(initial_modes)
            if initial_modes.shape != (self.n_clusters, X.shape[1]):
                raise DataValidationError(
                    f"initial_modes shape {initial_modes.shape} != "
                    f"({self.n_clusters}, {X.shape[1]})"
                )
            return initial_modes.astype(X.dtype, copy=True)
        if self.n_clusters > X.shape[0]:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds n_items={X.shape[0]}"
            )
        return resolve_init(self.init)(X, self.n_clusters, rng)

    def _assign(
        self, X: np.ndarray, modes: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Exhaustive assignment with keep-current-on-tie semantics.

        Processes items in chunks so the ``(chunk, k, m)`` boolean
        comparison tensor stays within a fixed memory budget.
        """
        n = X.shape[0]
        new_labels = np.empty(n, dtype=np.int64)
        for start in range(0, n, self.chunk_items):
            stop = min(start + self.chunk_items, n)
            dists = np.count_nonzero(
                X[start:stop, None, :] != modes[None, :, :], axis=2
            )
            best = np.argmin(dists, axis=1)
            chunk_labels = labels[start:stop]
            assigned = chunk_labels >= 0
            if np.any(assigned):
                rows = np.flatnonzero(assigned)
                current = chunk_labels[rows]
                keep = dists[rows, current] <= dists[rows, best[rows]]
                best[rows[keep]] = current[keep]
            new_labels[start:stop] = best
        moves = int(np.count_nonzero(new_labels != labels))
        return new_labels, moves

    # ------------------------------------------------------------------
    # artifact support
    # ------------------------------------------------------------------

    def fitted_model(self):
        """Export the immutable :class:`~repro.api.ClusterModel` artifact.

        The exhaustive baseline has no LSH index, so the artifact
        carries ``lsh=None`` and serves ``predict`` by full scans —
        exactly like this estimator.
        """
        from repro.api.model import ClusterModel

        check_fitted(self)
        return ClusterModel(
            algorithm=type(self)._registry_name,
            n_clusters=self.n_clusters,
            centroids=self._modes,
            lsh=None,
            engine=EngineSpec(chunk_items=self.chunk_items),
            train=TrainSpec(
                init=self.init,
                max_iter=self.max_iter,
                empty_cluster_policy=self.empty_cluster_policy,
                track_cost=self.track_cost,
            ),
            labels=self._labels,
            params=self.get_params(),
            state=self._artifact_scalars(),
            metadata=self._artifact_metadata(),
        )
