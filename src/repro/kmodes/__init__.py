"""K-Modes categorical clustering (Huang 1998) — the paper's baseline.

Implemented from scratch per Section III-A1 of the paper:

* :mod:`repro.kmodes.dissimilarity` — the matching dissimilarity
  d(X, Y) = number of mismatching attributes (Equations 1-2);
* :mod:`repro.kmodes.modes` — column-wise most-frequent-value modes,
  the minimiser of D(X, Q) (Equation 3);
* :mod:`repro.kmodes.cost` — the clustering cost P(W, Q) (Equation 4);
* :mod:`repro.kmodes.initialization` — random (used by the paper),
  Huang and Cao centroid initialisation;
* :mod:`repro.kmodes.kmodes` — the :class:`KModes` estimator.
"""

from repro.kmodes.cost import clustering_cost
from repro.kmodes.dissimilarity import (
    distances_to_modes,
    matching_distance,
    pairwise_matching,
)
from repro.kmodes.fuzzy import FuzzyKModes
from repro.kmodes.initialization import (
    cao_init,
    huang_init,
    random_init,
    resolve_init,
)
from repro.kmodes.kmodes import KModes
from repro.kmodes.modes import compute_modes

__all__ = [
    "KModes",
    "FuzzyKModes",
    "matching_distance",
    "distances_to_modes",
    "pairwise_matching",
    "compute_modes",
    "clustering_cost",
    "random_init",
    "huang_init",
    "cao_init",
    "resolve_init",
]
