"""Centroid initialisation methods for K-Modes.

The paper evaluates with **random selection of k distinct items**
(Section IV-A: "we will randomly select the k initial centroids"),
holding the selection fixed across algorithm variants so initialisation
cannot influence the comparison.  Huang's frequency-based method and
Cao's density-based method are provided as well since the paper cites
both ([3], [22]) as alternatives.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.kmodes.dissimilarity import pairwise_matching

__all__ = ["random_init", "huang_init", "cao_init", "resolve_init"]


def _validate(X: np.ndarray, n_clusters: int) -> np.ndarray:
    X = np.asarray(X)
    if X.ndim != 2 or X.size == 0:
        raise DataValidationError("X must be a non-empty 2-D matrix")
    if n_clusters <= 0:
        raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
    if n_clusters > X.shape[0]:
        raise ConfigurationError(
            f"n_clusters={n_clusters} exceeds the number of items {X.shape[0]}"
        )
    return X


def random_init(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose k distinct items uniformly at random as the initial modes.

    This is the method the paper uses in all experiments.
    """
    X = _validate(X, n_clusters)
    chosen = rng.choice(X.shape[0], size=n_clusters, replace=False)
    return X[chosen].copy()


def huang_init(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Huang's frequency-based initialisation.

    Each seed mode samples every attribute proportionally to the
    attribute's category frequencies, then is replaced by the most
    similar actual item (distinct items across seeds where possible) so
    that modes correspond to real records.
    """
    X = _validate(X, n_clusters)
    n, m = X.shape
    seeds = np.empty((n_clusters, m), dtype=X.dtype)
    for j in range(m):
        values, counts = np.unique(X[:, j], return_counts=True)
        seeds[:, j] = rng.choice(values, size=n_clusters, p=counts / counts.sum())
    # Snap each synthetic seed to its nearest real item.
    distances = pairwise_matching(seeds, X)
    taken: set[int] = set()
    modes = np.empty_like(seeds)
    for i in range(n_clusters):
        for candidate in np.argsort(distances[i], kind="stable"):
            if int(candidate) not in taken:
                taken.add(int(candidate))
                modes[i] = X[candidate]
                break
        else:  # more seeds than items — cannot happen after _validate
            modes[i] = X[int(np.argmin(distances[i]))]
    return modes


def cao_init(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Cao, Liang & Bai (2009) density-based initialisation.

    The first mode is the item of greatest density (average relative
    frequency of its attribute values); each subsequent mode maximises
    ``density(x) · min-distance-to-chosen-modes``, balancing centrality
    against separation.  Deterministic given the data.
    """
    X = _validate(X, n_clusters)
    n, m = X.shape
    density = np.zeros(n, dtype=np.float64)
    for j in range(m):
        values, inverse, counts = np.unique(
            X[:, j], return_inverse=True, return_counts=True
        )
        density += counts[inverse]
    density /= n * m

    chosen = [int(np.argmax(density))]
    # Distance of every item to its nearest already-chosen mode.
    min_dist = np.count_nonzero(X != X[chosen[0]][None, :], axis=1).astype(np.float64)
    while len(chosen) < n_clusters:
        score = density * min_dist
        score[chosen] = -np.inf
        nxt = int(np.argmax(score))
        chosen.append(nxt)
        dist_new = np.count_nonzero(X != X[nxt][None, :], axis=1).astype(np.float64)
        np.minimum(min_dist, dist_new, out=min_dist)
    return X[np.array(chosen)].copy()


_METHODS: dict[str, Callable[..., np.ndarray]] = {
    "random": random_init,
    "huang": huang_init,
    "cao": cao_init,
}


def resolve_init(method: str) -> Callable[..., np.ndarray]:
    """Look up an initialisation function by name.

    Raises
    ------
    ConfigurationError
        For unknown method names.
    """
    key = method.lower()
    if key not in _METHODS:
        raise ConfigurationError(
            f"unknown init method {method!r}; available: {sorted(_METHODS)}"
        )
    return _METHODS[key]
