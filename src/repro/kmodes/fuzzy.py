"""Fuzzy K-Modes (Huang & Ng, 1999) — the paper's reference [21].

The paper introduces K-Modes through the fuzzy formulation, so the
library ships it as an extension: instead of a hard assignment, each
item carries a membership vector over the k clusters, updated as

    w_il = 1 / Σ_j (d(x_i, Q_l) / d(x_i, Q_j))^(1/(α-1))

with fuzziness exponent α > 1, and modes maximise the *membership-
weighted* category frequencies per attribute.  Items at distance 0
from one or more modes get crisp membership split over those modes.

Hard labels (``labels_``) are the argmax memberships, which makes the
estimator drop-in comparable with :class:`repro.kmodes.KModes`.
"""

from __future__ import annotations

import numpy as np

from repro.api.protocol import EstimatorProtocol
from repro.api.registry import register_estimator
from repro.api.specs import EngineSpec, TrainSpec
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    check_fitted,
)
from repro.instrumentation import RunStats, Timer
from repro.kmodes.initialization import resolve_init

__all__ = ["FuzzyKModes"]


@register_estimator("fuzzy-kmodes")
class FuzzyKModes(EstimatorProtocol):
    """Fuzzy K-Modes with membership exponent ``alpha``.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    alpha:
        Fuzziness exponent, > 1.  Values near 1 approach hard K-Modes;
        large values blur memberships towards uniform.
    init:
        ``'random'``, ``'huang'`` or ``'cao'``.
    max_iter:
        Iteration cap.
    tol:
        Convergence threshold on the fuzzy cost improvement.
    seed:
        Initialisation seed.

    Attributes
    ----------
    modes_:
        ``(k, m)`` fitted modes.
    memberships_:
        ``(n, k)`` row-stochastic membership matrix.
    labels_:
        Hard labels (argmax membership).
    cost_:
        Final fuzzy cost  Σ_il w_il^α · d(x_i, Q_l).

    Examples
    --------
    >>> X = np.array([[0, 1], [0, 1], [5, 9], [5, 9]])
    >>> model = FuzzyKModes(n_clusters=2, alpha=1.5, seed=1).fit(X)
    >>> sorted(np.bincount(model.labels_).tolist())
    [2, 2]
    """

    _centroid_attr = "_modes"

    def __init__(
        self,
        n_clusters: int,
        alpha: float = 1.5,
        init: str = "random",
        max_iter: int = 100,
        tol: float = 1e-4,
        seed: int | None = None,
    ):
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
        if alpha <= 1.0:
            raise ConfigurationError(f"alpha must exceed 1, got {alpha}")
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be positive, got {max_iter}")
        if tol < 0:
            raise ConfigurationError(f"tol must be non-negative, got {tol}")
        resolve_init(init)
        self.n_clusters = int(n_clusters)
        self.alpha = float(alpha)
        self.init = init
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed

        self.cost_: float = float("nan")
        self.n_iter_: int = 0
        self.converged_: bool = False
        self._modes: np.ndarray | None = None
        self._fitted_memberships: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._stats: RunStats | None = None

    # ------------------------------------------------------------------
    # fitted state (NotFittedError before fit)
    # ------------------------------------------------------------------

    def _is_fitted(self) -> bool:
        return self._modes is not None

    @property
    def modes_(self) -> np.ndarray:
        """``(k, m)`` fitted cluster modes."""
        check_fitted(self)
        return self._modes

    @property
    def memberships_(self) -> np.ndarray:
        """``(n, k)`` row-stochastic training memberships."""
        check_fitted(self)
        return self._fitted_memberships

    @property
    def labels_(self) -> np.ndarray:
        """``(n,)`` hard labels (argmax memberships)."""
        check_fitted(self)
        return self._labels

    @property
    def stats_(self) -> RunStats | None:
        """Fit statistics (``None`` on estimators restored from disk)."""
        check_fitted(self)
        return self._stats

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, initial_modes: np.ndarray | None = None) -> "FuzzyKModes":
        """Run the alternating membership / mode optimisation."""
        X = self._validate_X(X)
        rng = np.random.default_rng(self.seed)
        if initial_modes is not None:
            modes = np.asarray(initial_modes)
            if modes.shape != (self.n_clusters, X.shape[1]):
                raise DataValidationError(
                    f"initial_modes shape {modes.shape} != "
                    f"({self.n_clusters}, {X.shape[1]})"
                )
            modes = modes.astype(X.dtype, copy=True)
        else:
            if self.n_clusters > X.shape[0]:
                raise ConfigurationError(
                    f"n_clusters={self.n_clusters} exceeds n_items={X.shape[0]}"
                )
            modes = resolve_init(self.init)(X, self.n_clusters, rng)

        stats = RunStats(algorithm=f"Fuzzy-K-Modes a{self.alpha}")
        previous_cost = np.inf
        converged = False
        memberships = np.zeros((X.shape[0], self.n_clusters))
        hard_labels = np.full(X.shape[0], -1, dtype=np.int64)

        for _ in range(self.max_iter):
            with Timer() as timer:
                distances = self._distances(X, modes)
                memberships = self._memberships(distances)
                modes = self._update_modes(X, memberships, modes)
                cost = float(
                    np.sum((memberships**self.alpha) * self._distances(X, modes))
                )
            new_hard = np.argmax(memberships, axis=1)
            moves = int(np.count_nonzero(new_hard != hard_labels))
            hard_labels = new_hard
            stats.record(
                duration_s=timer.elapsed_s,
                moves=moves,
                cost=cost,
                mean_shortlist=float(self.n_clusters),
            )
            if previous_cost - cost <= self.tol:
                converged = True
                break
            previous_cost = cost

        stats.converged = converged
        self._modes = modes
        self._fitted_memberships = memberships
        self._labels = np.argmax(memberships, axis=1)
        self.cost_ = stats.costs[-1]
        self.n_iter_ = stats.n_iterations
        self.converged_ = converged
        self._stats = stats
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard labels for new items (argmax membership)."""
        return np.argmax(self.predict_memberships(X), axis=1)

    def predict_memberships(self, X: np.ndarray) -> np.ndarray:
        """Membership matrix for new items."""
        check_fitted(self)
        X = self._validate_predict_X(X)
        if X.shape[1] != self.modes_.shape[1]:
            raise DataValidationError(
                f"X has {X.shape[1]} attributes but the model was fitted "
                f"with {self.modes_.shape[1]}"
            )
        if X.shape[0] == 0:
            return np.empty((0, self.n_clusters), dtype=np.float64)
        return self._memberships(self._distances(X, self.modes_))

    # ------------------------------------------------------------------

    @staticmethod
    def _validate_X(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2 or X.size == 0:
            raise DataValidationError("X must be a non-empty 2-D matrix")
        if not np.issubdtype(X.dtype, np.integer):
            raise DataValidationError(
                f"X must hold integer category codes, got dtype {X.dtype}"
            )
        if X.min() < 0:
            raise DataValidationError("category codes must be non-negative")
        # Canonical int64 C-order so dtype/contiguity variants of the
        # same codes produce identical memberships.
        return np.ascontiguousarray(X, dtype=np.int64)

    def _distances(self, X: np.ndarray, modes: np.ndarray) -> np.ndarray:
        return np.count_nonzero(
            X[:, None, :] != modes[None, :, :], axis=2
        ).astype(np.float64)

    def _memberships(self, distances: np.ndarray) -> np.ndarray:
        """Row-stochastic membership update with zero-distance handling."""
        exponent = 1.0 / (self.alpha - 1.0)
        memberships = np.zeros_like(distances)
        zero_mask = distances == 0.0
        has_zero = zero_mask.any(axis=1)
        # Items matching one or more modes exactly: split crisp
        # membership evenly over those modes.
        if has_zero.any():
            rows = np.flatnonzero(has_zero)
            memberships[rows] = zero_mask[rows] / zero_mask[rows].sum(
                axis=1, keepdims=True
            )
        regular = ~has_zero
        if regular.any():
            d = distances[regular]
            inverse = (1.0 / d) ** exponent
            memberships[regular] = inverse / inverse.sum(axis=1, keepdims=True)
        return memberships

    def fitted_model(self):
        """Export the immutable :class:`~repro.api.ClusterModel` artifact.

        Memberships are training-run state (they describe the training
        items, like ``labels``); the artifact carries the hard labels
        and modes, and a reconstructed estimator serves both
        ``predict`` and ``predict_memberships``.
        """
        from repro.api.model import ClusterModel

        check_fitted(self)
        return ClusterModel(
            algorithm=type(self)._registry_name,
            n_clusters=self.n_clusters,
            centroids=self._modes,
            lsh=None,
            engine=EngineSpec(),
            train=TrainSpec(init=self.init, max_iter=self.max_iter),
            labels=self._labels,
            params=self.get_params(),
            state=self._artifact_scalars(),
            metadata=self._artifact_metadata(),
        )

    def _restore_fit_state(self, model) -> None:
        super()._restore_fit_state(model)
        # memberships describe the training items; they are not part of
        # the artifact, so a restored estimator has none
        self._fitted_memberships = None

    def _update_modes(
        self, X: np.ndarray, memberships: np.ndarray, previous: np.ndarray
    ) -> np.ndarray:
        """Membership-weighted most-frequent value per (cluster, column)."""
        weights = memberships**self.alpha
        modes = previous.copy()
        for j in range(X.shape[1]):
            values, codes = np.unique(X[:, j], return_inverse=True)
            # (k, n_values): total weight of each value in each cluster.
            tally = np.zeros((self.n_clusters, len(values)))
            np.add.at(tally.T, codes, weights)
            winning = np.argmax(tally, axis=1)
            populated = tally.sum(axis=1) > 0
            modes[populated, j] = values[winning[populated]]
        return modes
