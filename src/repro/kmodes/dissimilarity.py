"""The K-Modes matching dissimilarity (Equations 1-2 of the paper).

``d(X, Y)`` counts the attributes on which two categorical items
disagree: 0 for identical items, m for completely disjoint ones.  The
kernels below are the innermost loops of both K-Modes and MH-K-Modes,
so each is a single vectorised numpy expression.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError

__all__ = ["matching_distance", "distances_to_modes", "pairwise_matching"]


def matching_distance(x: np.ndarray, y: np.ndarray) -> int:
    """Number of mismatching attributes between two items.

    Parameters
    ----------
    x, y:
        1-D categorical code vectors of equal length.

    Examples
    --------
    >>> matching_distance(np.array([1, 2, 3]), np.array([1, 9, 3]))
    1
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.ndim != 1 or x.shape != y.shape:
        raise DataValidationError(
            f"expected two 1-D vectors of equal length, got {x.shape} and {y.shape}"
        )
    return int(np.count_nonzero(x != y))


def distances_to_modes(x: np.ndarray, modes: np.ndarray) -> np.ndarray:
    """Distances from one item to a set of modes.

    This is the kernel MH-K-Modes runs against the *shortlist*: the
    whole point of the paper is that ``modes`` here has only a handful
    of rows instead of all k.

    Parameters
    ----------
    x:
        ``(m,)`` item.
    modes:
        ``(n_modes, m)`` mode matrix.

    Returns
    -------
    numpy.ndarray
        ``(n_modes,)`` int64 mismatch counts.
    """
    x = np.asarray(x)
    modes = np.asarray(modes)
    if x.ndim != 1:
        raise DataValidationError(f"item must be 1-D, got ndim={x.ndim}")
    if modes.ndim != 2 or modes.shape[1] != x.shape[0]:
        raise DataValidationError(
            f"modes shape {modes.shape} incompatible with item length {x.shape[0]}"
        )
    return np.count_nonzero(modes != x[None, :], axis=1).astype(np.int64)


def pairwise_matching(A: np.ndarray, B: np.ndarray, chunk_rows: int = 256) -> np.ndarray:
    """All-pairs matching distances between two item matrices.

    This is the exhaustive kernel the baseline K-Modes runs: every item
    of ``A`` against every row of ``B``.  Memory is bounded by chunking
    ``A`` so the ``(chunk, |B|, m)`` comparison tensor stays small.

    Parameters
    ----------
    A:
        ``(n_a, m)`` items.
    B:
        ``(n_b, m)`` items (typically the cluster modes).
    chunk_rows:
        Rows of ``A`` processed per chunk.

    Returns
    -------
    numpy.ndarray
        ``(n_a, n_b)`` int64 distance matrix.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise DataValidationError(
            f"incompatible matrices: A {A.shape}, B {B.shape}"
        )
    if chunk_rows <= 0:
        raise DataValidationError(f"chunk_rows must be positive, got {chunk_rows}")
    n_a = A.shape[0]
    out = np.empty((n_a, B.shape[0]), dtype=np.int64)
    for start in range(0, n_a, chunk_rows):
        stop = min(start + chunk_rows, n_a)
        out[start:stop] = np.count_nonzero(
            A[start:stop, None, :] != B[None, :, :], axis=2
        )
    return out
