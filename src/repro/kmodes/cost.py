"""The K-Modes cost function P(W, Q) — Equation 4 of the paper.

P(W, Q) is the total matching distance between every item and the mode
of its assigned cluster.  Batch K-Modes monotonically decreases this
quantity: the assignment step is optimal for fixed modes, and the mode
update is optimal for fixed assignments (Equation 3's minimiser).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError

__all__ = ["clustering_cost"]


def clustering_cost(X: np.ndarray, modes: np.ndarray, labels: np.ndarray) -> int:
    """Total mismatch count between items and their cluster modes.

    Parameters
    ----------
    X:
        ``(n, m)`` categorical code matrix.
    modes:
        ``(k, m)`` mode matrix.
    labels:
        ``(n,)`` cluster id per item, each in ``[0, k)``.

    Returns
    -------
    int
        P(W, Q); ranges from 0 (every item equals its mode) to n·m.
    """
    X = np.asarray(X)
    modes = np.asarray(modes)
    labels = np.asarray(labels)
    if X.ndim != 2 or modes.ndim != 2 or X.shape[1] != modes.shape[1]:
        raise DataValidationError(
            f"incompatible shapes: X {X.shape}, modes {modes.shape}"
        )
    if labels.shape != (X.shape[0],):
        raise DataValidationError(
            f"labels shape {labels.shape} != ({X.shape[0]},)"
        )
    if labels.size == 0:
        return 0
    if labels.min() < 0 or labels.max() >= modes.shape[0]:
        raise DataValidationError(
            f"labels outside [0, {modes.shape[0]})"
        )
    return int(np.count_nonzero(X != modes[labels]))
