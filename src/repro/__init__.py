"""repro — LSH-accelerated centroid-based clustering.

A from-scratch, production-quality reproduction of

    McConville, Cao, Liu & Miller,
    "Accelerating Large Scale Centroid-based Clustering with Locality
    Sensitive Hashing", ICDE 2016.

The paper's idea: centroid algorithms spend their time comparing every
item against every one of k centroids.  Index the *items* once with a
banded LSH (MinHash for categorical data), let every indexed item carry
a mutable reference to its current cluster, and each assignment step
only needs exact distances against the small *shortlist* of clusters
owned by an item's hash neighbours.

Quick start::

    import numpy as np
    from repro import KModes, MHKModes, RuleBasedGenerator, cluster_purity
    from repro.api import LSHSpec

    data = RuleBasedGenerator(n_clusters=500, n_attributes=60, seed=0).generate(5_000)
    fast = MHKModes(n_clusters=500, lsh=LSHSpec(bands=20, rows=5, seed=0)).fit(data.X)
    exact = KModes(n_clusters=500, seed=0).fit(data.X)
    print(cluster_purity(fast.labels_, data.labels),
          cluster_purity(exact.labels_, data.labels))

    model = fast.fitted_model()        # immutable ClusterModel artifact
    model.save("model")                # npz + json sidecar; serves predict
                                       # without the training estimator

Package map — each subpackage is documented in its own ``__init__``:

* :mod:`repro.api` — spec-driven estimator API: typed config objects
  (:class:`LSHSpec` / :class:`EngineSpec` / :class:`TrainSpec`), the
  shared estimator protocol (``get_params``/``set_params``/``clone``),
  the :func:`make_estimator` registry and the immutable fitted
  :class:`ClusterModel` artifact
* :mod:`repro.core` — MH-K-Modes and the generic acceleration framework
* :mod:`repro.kmodes` — exhaustive K-Modes baseline
* :mod:`repro.kmeans` — K-Means / mini-batch / LSH-K-Means (numeric extension)
* :mod:`repro.lsh` — MinHash, banding, the clustered index, SimHash, p-stable
* :mod:`repro.engine` — serial/thread/process execution backends, the
  sharded index powering parallel fits (``EngineSpec`` / ``backend=``)
  and the persistent worker pools shared with serving
* :mod:`repro.serve` — :class:`ModelServer`, concurrent batch-predict
  serving on :class:`ClusterModel` (``ServeSpec`` / ``repro serve``)
* :mod:`repro.data` — datgen clone, Yahoo-like corpus, TF-IDF pipeline, I/O
* :mod:`repro.metrics` — purity, NMI, ARI, Jaccard
* :mod:`repro.experiments` — configs/runner/reports for every paper figure
* :mod:`repro.instrumentation` — per-iteration statistics
* :mod:`repro.obs` — metrics registry, tracing spans, JSON trace
  events and the ``GET /metrics`` Prometheus surface
* :mod:`repro.resilience` — admission control + micro-batching in
  front of the server (``ResilienceSpec``), capped-backoff retry
  policies for worker-crash recovery, and deterministic fault
  injection for the chaos suite
"""

from repro.api import (
    ClusterModel,
    EngineSpec,
    EstimatorProtocol,
    LSHSpec,
    ResilienceSpec,
    ServeSpec,
    StreamSpec,
    TrainSpec,
    available_estimators,
    make_estimator,
)

from repro.core import (
    MHKModes,
    StreamingMHKModes,
    candidate_pair_probability,
    cluster_recall_probability,
    error_bound,
    suggest_bands_rows,
)
from repro.data import (
    CategoricalDataset,
    CategoricalEncoder,
    QuestionCorpus,
    RuleBasedGenerator,
    YahooAnswersSynthesizer,
    corpus_to_dataset,
    load_cluster_model,
    load_model,
    load_serve_spec,
    save_model,
)
from repro.engine import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ShardedClusteredLSHIndex,
    ThreadBackend,
    resolve_backend,
)
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    DataValidationError,
    DeadlineExceededError,
    EmptyClusterError,
    NotFittedError,
    OverloadedError,
    PoolBrokenError,
    ReproError,
    ServerClosedError,
    check_fitted,
)
from repro.kmeans import KMeans, LSHKMeans, MiniBatchKMeans
from repro.kmodes import FuzzyKModes, KModes
from repro.lsh import ClusteredLSHIndex, MinHasher, TokenSets
from repro.metrics import (
    adjusted_rand_index,
    cluster_purity,
    jaccard_similarity,
    normalized_mutual_information,
)
from repro.serve import ModelServer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # spec-driven API
    "LSHSpec",
    "EngineSpec",
    "TrainSpec",
    "ResilienceSpec",
    "ServeSpec",
    "StreamSpec",
    "ClusterModel",
    "EstimatorProtocol",
    "make_estimator",
    "available_estimators",
    # serving
    "ModelServer",
    # core
    "MHKModes",
    "error_bound",
    "candidate_pair_probability",
    "cluster_recall_probability",
    "suggest_bands_rows",
    # baselines and extensions
    "KModes",
    "FuzzyKModes",
    "KMeans",
    "MiniBatchKMeans",
    "LSHKMeans",
    "StreamingMHKModes",
    # lsh
    "MinHasher",
    "TokenSets",
    "ClusteredLSHIndex",
    # engine
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "ShardedClusteredLSHIndex",
    # data
    "CategoricalDataset",
    "RuleBasedGenerator",
    "YahooAnswersSynthesizer",
    "QuestionCorpus",
    "corpus_to_dataset",
    "CategoricalEncoder",
    "save_model",
    "load_model",
    "load_cluster_model",
    # metrics
    "cluster_purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "jaccard_similarity",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "DataValidationError",
    "NotFittedError",
    "ConvergenceError",
    "EmptyClusterError",
    "ServerClosedError",
    "OverloadedError",
    "DeadlineExceededError",
    "PoolBrokenError",
    "check_fitted",
]
