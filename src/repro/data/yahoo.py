"""Synthetic Yahoo!-Answers-like question corpus.

The real Webscope L6 corpus is licence-gated, so the reproduction
generates a corpus with the properties the paper's experiments rely
on (Section IV-B):

* thousands of fine-grained *topics*, each with a small set of
  characteristic keywords ("zoologist", "zoo" for Zoology);
* short questions mixing a few topic keywords into a Zipfian
  background vocabulary shared by all topics ("im interested in being
  a ...", stop words, etc.);
* *noisy user labels*: the paper notes users often pick a non-optimal
  topic, which is one reason absolute purity is low (~25 %).  A
  configurable fraction of questions is tagged with a wrong topic
  while their text still comes from the true one;
* keyword bleed: related topics share some keywords, so topics are
  not trivially separable.

The downstream pipeline is exactly the paper's: TF-IDF over topic
documents selects a vocabulary, questions become binary word-presence
vectors (absent words filtered from MinHash), and K-Modes clusters
them with k = number of topics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.encoding import encode_presence_matrix
from repro.data.tfidf import select_topic_vocabulary
from repro.exceptions import ConfigurationError, DataValidationError

__all__ = ["QuestionCorpus", "YahooAnswersSynthesizer", "corpus_to_dataset"]


@dataclass
class QuestionCorpus:
    """A topic-tagged question corpus.

    Attributes
    ----------
    questions:
        One token list per question.
    topics:
        The (possibly noisy) user-selected topic id per question —
        what the paper uses as clustering ground truth.
    true_topics:
        The topic that actually generated each question's text.
    topic_names:
        Human-readable topic names, indexed by topic id.
    metadata:
        Generator parameters.
    """

    questions: list[list[str]]
    topics: np.ndarray
    true_topics: np.ndarray
    topic_names: list[str]
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.topics = np.asarray(self.topics)
        self.true_topics = np.asarray(self.true_topics)
        if len(self.questions) != len(self.topics) or len(self.topics) != len(
            self.true_topics
        ):
            raise DataValidationError(
                "questions, topics and true_topics must have equal length"
            )

    @property
    def n_questions(self) -> int:
        return len(self.questions)

    @property
    def n_topics(self) -> int:
        return len(self.topic_names)

    def topic_documents(self) -> list[list[str]]:
        """Concatenate each topic's questions into one token stream.

        This is the document grouping the paper feeds to TF-IDF.
        Topics with no questions yield empty documents.  Grouping uses
        the *user* labels, as the paper necessarily did.
        """
        docs: list[list[str]] = [[] for _ in range(self.n_topics)]
        for tokens, topic in zip(self.questions, self.topics):
            docs[int(topic)].extend(tokens)
        return docs

    def label_noise_rate(self) -> float:
        """Fraction of questions whose user label differs from the truth."""
        if self.n_questions == 0:
            return 0.0
        return float(np.mean(self.topics != self.true_topics))


class YahooAnswersSynthesizer:
    """Generates :class:`QuestionCorpus` instances.

    Parameters
    ----------
    n_topics:
        Number of topics (the paper's corpus has 2916).
    keywords_per_topic:
        Size of each topic's characteristic keyword set.
    background_vocabulary_size:
        Size of the shared Zipfian background vocabulary.
    keyword_rate:
        Probability that each emitted token is a topic keyword rather
        than a background word.
    mean_question_length:
        Mean token count per question (Poisson distributed, min 3).
    label_noise:
        Fraction of questions tagged with a wrong (random) topic.
    keyword_bleed:
        Probability that a topic keyword slot borrows from a *related*
        topic's keywords instead, creating confusable topics.
    zipf_exponent:
        Skew of the background word distribution.
    seed:
        Generator seed.
    """

    def __init__(
        self,
        n_topics: int = 300,
        keywords_per_topic: int = 4,
        background_vocabulary_size: int = 2_000,
        keyword_rate: float = 0.5,
        mean_question_length: float = 12.0,
        label_noise: float = 0.1,
        keyword_bleed: float = 0.05,
        zipf_exponent: float = 1.3,
        seed: int | None = None,
    ):
        if n_topics <= 1:
            raise ConfigurationError(f"n_topics must be > 1, got {n_topics}")
        if keywords_per_topic <= 0:
            raise ConfigurationError(
                f"keywords_per_topic must be positive, got {keywords_per_topic}"
            )
        if background_vocabulary_size <= 0:
            raise ConfigurationError(
                "background_vocabulary_size must be positive, "
                f"got {background_vocabulary_size}"
            )
        for name, value in (
            ("keyword_rate", keyword_rate),
            ("label_noise", label_noise),
            ("keyword_bleed", keyword_bleed),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if mean_question_length < 3.0:
            raise ConfigurationError(
                f"mean_question_length must be >= 3, got {mean_question_length}"
            )
        if zipf_exponent <= 1.0:
            raise ConfigurationError(
                f"zipf_exponent must be > 1, got {zipf_exponent}"
            )
        self.n_topics = int(n_topics)
        self.keywords_per_topic = int(keywords_per_topic)
        self.background_vocabulary_size = int(background_vocabulary_size)
        self.keyword_rate = float(keyword_rate)
        self.mean_question_length = float(mean_question_length)
        self.label_noise = float(label_noise)
        self.keyword_bleed = float(keyword_bleed)
        self.zipf_exponent = float(zipf_exponent)
        self.seed = seed

    def generate(self, n_questions: int) -> QuestionCorpus:
        """Draw a corpus of ``n_questions`` questions."""
        if n_questions <= 0:
            raise ConfigurationError(
                f"n_questions must be positive, got {n_questions}"
            )
        rng = np.random.default_rng(self.seed)
        topic_names = [f"topic{t:05d}" for t in range(self.n_topics)]
        background = [f"word{w:06d}" for w in range(self.background_vocabulary_size)]
        keywords = [
            [f"kw{t:05d}x{j}" for j in range(self.keywords_per_topic)]
            for t in range(self.n_topics)
        ]
        # Zipfian background distribution (normalised power law).
        ranks = np.arange(1, self.background_vocabulary_size + 1, dtype=np.float64)
        background_p = ranks**-self.zipf_exponent
        background_p /= background_p.sum()

        true_topics = rng.integers(0, self.n_topics, size=n_questions, dtype=np.int64)
        # Token generation is fully vectorised: draw every question's
        # length, then all token-level decisions in flat arrays, and
        # only assemble the Python string lists at the end.
        lengths = np.maximum(3, rng.poisson(self.mean_question_length, n_questions))
        total = int(lengths.sum())
        token_topic = np.repeat(true_topics, lengths)
        is_keyword = rng.random(total) < self.keyword_rate
        bleed = rng.random(total) < self.keyword_bleed
        source = token_topic.copy()
        # Related topics are adjacent ids — a cheap but effective model
        # of a topic hierarchy.
        shifted = (token_topic + rng.integers(1, 4, size=total)) % self.n_topics
        source[bleed] = shifted[bleed]
        keyword_slot = rng.integers(0, self.keywords_per_topic, size=total)
        background_idx = rng.choice(
            self.background_vocabulary_size, size=total, p=background_p
        )
        flat_tokens = [
            keywords[int(source[t])][int(keyword_slot[t])]
            if is_keyword[t]
            else background[int(background_idx[t])]
            for t in range(total)
        ]
        questions = []
        cursor = 0
        for length in lengths:
            questions.append(flat_tokens[cursor : cursor + int(length)])
            cursor += int(length)

        labels = true_topics.copy()
        flip = rng.random(n_questions) < self.label_noise
        if flip.any():
            labels[flip] = rng.integers(0, self.n_topics, size=int(flip.sum()))

        return QuestionCorpus(
            questions=questions,
            topics=labels,
            true_topics=true_topics,
            topic_names=topic_names,
            metadata={
                "generator": "YahooAnswersSynthesizer",
                "n_topics": self.n_topics,
                "keywords_per_topic": self.keywords_per_topic,
                "background_vocabulary_size": self.background_vocabulary_size,
                "keyword_rate": self.keyword_rate,
                "label_noise": self.label_noise,
                "keyword_bleed": self.keyword_bleed,
                "seed": self.seed,
            },
        )


def corpus_to_dataset(
    corpus: QuestionCorpus,
    tfidf_threshold: float,
    max_words_per_topic: int = 10_000,
) -> CategoricalDataset:
    """The paper's full Section IV-B pipeline: corpus → K-Modes input.

    1. concatenate questions per (user-labelled) topic;
    2. TF-IDF-select the vocabulary at ``tfidf_threshold``;
    3. encode each question as a binary word-presence vector (one
       categorical attribute per vocabulary word, value 1 = present).

    The returned dataset's labels are the noisy user topics (the
    paper's ground truth).  Cluster it with ``absent_code=0`` so
    MinHash sees only present words.

    Raises
    ------
    DataValidationError
        If the threshold selects an empty vocabulary.
    """
    vocabulary = select_topic_vocabulary(
        corpus.topic_documents(), tfidf_threshold, max_words_per_topic
    )
    if not vocabulary:
        raise DataValidationError(
            f"TF-IDF threshold {tfidf_threshold} selected no words; lower it"
        )
    X = encode_presence_matrix(corpus.questions, vocabulary)
    return CategoricalDataset(
        X=X,
        labels=corpus.topics.copy(),
        name=f"yahoo-like(threshold={tfidf_threshold}, m={len(vocabulary)})",
        metadata={
            "vocabulary": vocabulary,
            "tfidf_threshold": tfidf_threshold,
            "label_noise_rate": corpus.label_noise_rate(),
            **corpus.metadata,
        },
    )
