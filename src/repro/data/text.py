"""Tokenisation and vocabulary bookkeeping for the text pipeline.

Deliberately small: the Yahoo! Answers experiments need lower-cased
word tokens, document frequencies, and a stable word ↔ id mapping.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.exceptions import DataValidationError

__all__ = ["tokenize", "Vocabulary"]

_TOKEN_RE = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of a string.

    Examples
    --------
    >>> tokenize("Does a zoologist work only in a Zoo?")
    ['does', 'a', 'zoologist', 'work', 'only', 'in', 'a', 'zoo']
    """
    return _TOKEN_RE.findall(text.lower())


class Vocabulary:
    """Stable word ↔ id mapping with document frequencies.

    Build with :meth:`fit` over token lists, or from a fixed word list
    with :meth:`from_words`.  Ids are assigned in first-seen order for
    :meth:`fit` and list order for :meth:`from_words`.

    Examples
    --------
    >>> vocab = Vocabulary.from_words(["zoo", "zoologist"])
    >>> vocab.id_of("zoo")
    0
    >>> len(vocab)
    2
    """

    def __init__(self) -> None:
        self._word_to_id: dict[str, int] = {}
        self._words: list[str] = []
        self.document_frequency: Counter[str] = Counter()
        self.n_documents: int = 0

    @classmethod
    def from_words(cls, words: Sequence[str]) -> "Vocabulary":
        """Vocabulary over a fixed word list (ids follow list order)."""
        vocab = cls()
        for word in words:
            vocab._add(word)
        return vocab

    def fit(self, documents: Iterable[Sequence[str]]) -> "Vocabulary":
        """Collect words and document frequencies from token lists."""
        for tokens in documents:
            self.n_documents += 1
            for word in set(tokens):
                self.document_frequency[word] += 1
            for word in tokens:
                if word not in self._word_to_id:
                    self._add(word)
        return self

    def _add(self, word: str) -> None:
        if word in self._word_to_id:
            raise DataValidationError(f"duplicate word {word!r} in vocabulary")
        self._word_to_id[word] = len(self._words)
        self._words.append(word)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def id_of(self, word: str) -> int:
        """Id of ``word`` (raises ``KeyError`` for unknown words)."""
        return self._word_to_id[word]

    def word_of(self, word_id: int) -> str:
        """Word with the given id."""
        return self._words[word_id]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return len(self._words)

    @property
    def words(self) -> list[str]:
        """All words in id order (a copy)."""
        return list(self._words)

    def encode(self, tokens: Sequence[str]) -> list[int]:
        """Known-word ids of a token list (unknown words are skipped)."""
        return [self._word_to_id[t] for t in tokens if t in self._word_to_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary(n_words={len(self)}, n_documents={self.n_documents})"
