"""Conjunctive-rule synthetic categorical data — a ``datgen`` clone.

Section IV-A describes the paper's synthetic datasets, produced with
the (now defunct) tool from datasetgenerator.com:

* a global domain of 40 000 categorical values usable by any attribute;
* each cluster is defined by a conjunctive rule that pins a subset of
  attributes to fixed values — for the 100-attribute experiments the
  rules involve between 40 and 80 attributes;
* items belonging to a cluster take the rule's values on the rule
  attributes and arbitrary domain values elsewhere;
* rule widths scale proportionally when the attribute count grows.

:class:`RuleBasedGenerator` reproduces exactly that process, plus two
knobs the paper leaves implicit: cluster size balance and optional
noise that corrupts rule attributes (off by default, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import ConfigurationError

__all__ = ["ClusterRule", "RuleBasedGenerator"]


@dataclass(frozen=True)
class ClusterRule:
    """The conjunctive rule defining one cluster.

    Attributes
    ----------
    attributes:
        Indices of the attributes the rule constrains.
    values:
        The category value each constrained attribute must take.
    """

    attributes: np.ndarray
    values: np.ndarray

    @property
    def width(self) -> int:
        """Number of attributes the rule constrains."""
        return len(self.attributes)

    def matches(self, item: np.ndarray) -> bool:
        """True when ``item`` satisfies every conjunct of the rule."""
        return bool(np.array_equal(item[self.attributes], self.values))


class RuleBasedGenerator:
    """Synthetic categorical datasets in the style of ``datgen``.

    Parameters
    ----------
    n_clusters:
        Number of planted clusters k.
    n_attributes:
        Attributes per item m (the paper uses 100, 200, 400).
    domain_size:
        Global category domain (the paper uses 40 000).
    rule_width_fraction:
        ``(low, high)`` fraction of attributes each cluster's rule
        constrains; the paper's base configuration is (0.4, 0.8).
    noise_rate:
        Probability that a rule attribute of an item is replaced by a
        random domain value, simulating label noise.  The paper's
        generator is noise-free (0.0).
    balance:
        ``'uniform'`` — items pick clusters uniformly;
        ``'equal'`` — cluster sizes as equal as possible;
        ``'zipf'`` — skewed sizes (stress test beyond the paper).
    seed:
        Generator seed; rules and items are reproducible.

    Examples
    --------
    >>> gen = RuleBasedGenerator(n_clusters=5, n_attributes=20, seed=0)
    >>> ds = gen.generate(100)
    >>> ds.X.shape
    (100, 20)
    """

    def __init__(
        self,
        n_clusters: int,
        n_attributes: int = 100,
        domain_size: int = 40_000,
        rule_width_fraction: tuple[float, float] = (0.4, 0.8),
        noise_rate: float = 0.0,
        balance: str = "uniform",
        seed: int | None = None,
    ):
        if n_clusters <= 0:
            raise ConfigurationError(f"n_clusters must be positive, got {n_clusters}")
        if n_attributes <= 0:
            raise ConfigurationError(
                f"n_attributes must be positive, got {n_attributes}"
            )
        if domain_size <= 1:
            raise ConfigurationError(f"domain_size must be > 1, got {domain_size}")
        low, high = rule_width_fraction
        if not 0.0 < low <= high <= 1.0:
            raise ConfigurationError(
                f"rule_width_fraction must satisfy 0 < low <= high <= 1, "
                f"got {rule_width_fraction}"
            )
        if not 0.0 <= noise_rate < 1.0:
            raise ConfigurationError(
                f"noise_rate must be in [0, 1), got {noise_rate}"
            )
        if balance not in ("uniform", "equal", "zipf"):
            raise ConfigurationError(
                f"balance must be 'uniform', 'equal' or 'zipf', got {balance!r}"
            )
        self.n_clusters = int(n_clusters)
        self.n_attributes = int(n_attributes)
        self.domain_size = int(domain_size)
        self.rule_width_fraction = (float(low), float(high))
        self.noise_rate = float(noise_rate)
        self.balance = balance
        self.seed = seed
        self._rules: list[ClusterRule] | None = None

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------

    @property
    def rules(self) -> list[ClusterRule]:
        """The per-cluster conjunctive rules (built once, deterministic)."""
        if self._rules is None:
            rng = np.random.default_rng(self.seed)
            low, high = self.rule_width_fraction
            width_lo = max(1, int(round(low * self.n_attributes)))
            width_hi = max(width_lo, int(round(high * self.n_attributes)))
            widths = rng.integers(width_lo, width_hi + 1, size=self.n_clusters)
            self._rules = [
                ClusterRule(
                    attributes=np.sort(
                        rng.choice(self.n_attributes, size=w, replace=False)
                    ),
                    values=rng.integers(0, self.domain_size, size=w),
                )
                for w in widths
            ]
        return self._rules

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def generate(self, n_items: int) -> CategoricalDataset:
        """Draw ``n_items`` items with their ground-truth cluster labels."""
        if n_items <= 0:
            raise ConfigurationError(f"n_items must be positive, got {n_items}")
        # A second stream, decoupled from the rule stream, so that
        # generating different item counts reuses identical rules.
        rng = np.random.default_rng(
            None if self.seed is None else self.seed + 1_000_003
        )
        labels = self._draw_labels(n_items, rng)
        X = rng.integers(
            0, self.domain_size, size=(n_items, self.n_attributes), dtype=np.int64
        )
        rules = self.rules
        for cluster in range(self.n_clusters):
            members = np.flatnonzero(labels == cluster)
            if members.size == 0:
                continue
            rule = rules[cluster]
            X[np.ix_(members, rule.attributes)] = rule.values[None, :]
        if self.noise_rate > 0.0:
            self._corrupt(X, labels, rng)
        return CategoricalDataset(
            X=X,
            labels=labels,
            name=(
                f"datgen(k={self.n_clusters}, m={self.n_attributes}, "
                f"n={n_items})"
            ),
            metadata={
                "generator": "RuleBasedGenerator",
                "domain_size": self.domain_size,
                "rule_width_fraction": self.rule_width_fraction,
                "noise_rate": self.noise_rate,
                "balance": self.balance,
                "seed": self.seed,
            },
        )

    def _draw_labels(self, n_items: int, rng: np.random.Generator) -> np.ndarray:
        if self.balance == "equal":
            labels = np.arange(n_items, dtype=np.int64) % self.n_clusters
            rng.shuffle(labels)
            return labels
        if self.balance == "zipf":
            weights = 1.0 / np.arange(1, self.n_clusters + 1, dtype=np.float64)
            weights /= weights.sum()
            return rng.choice(self.n_clusters, size=n_items, p=weights).astype(
                np.int64
            )
        return rng.integers(0, self.n_clusters, size=n_items, dtype=np.int64)

    def _corrupt(
        self, X: np.ndarray, labels: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Replace a fraction of rule-attribute cells with random values."""
        rules = self.rules
        for cluster in range(self.n_clusters):
            members = np.flatnonzero(labels == cluster)
            if members.size == 0:
                continue
            rule = rules[cluster]
            flip = rng.random((members.size, rule.width)) < self.noise_rate
            n_flips = int(flip.sum())
            if n_flips == 0:
                continue
            rows, cols = np.nonzero(flip)
            X[members[rows], rule.attributes[cols]] = rng.integers(
                0, self.domain_size, size=n_flips
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RuleBasedGenerator(n_clusters={self.n_clusters}, "
            f"n_attributes={self.n_attributes}, domain_size={self.domain_size}, "
            f"seed={self.seed})"
        )
