"""The dataset container shared by generators, experiments and I/O."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import DataValidationError

__all__ = ["CategoricalDataset"]


@dataclass
class CategoricalDataset:
    """A categorical clustering dataset with ground-truth labels.

    Attributes
    ----------
    X:
        ``(n_items, n_attributes)`` integer category-code matrix.
    labels:
        ``(n_items,)`` ground-truth cluster/class per item.
    name:
        Human-readable dataset name (used in reports).
    metadata:
        Free-form provenance: generator parameters, vocabulary, etc.
    """

    X: np.ndarray
    labels: np.ndarray
    name: str = "unnamed"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X)
        self.labels = np.asarray(self.labels)
        if self.X.ndim != 2:
            raise DataValidationError(f"X must be 2-D, got ndim={self.X.ndim}")
        if self.labels.ndim != 1 or len(self.labels) != len(self.X):
            raise DataValidationError(
                f"labels must be 1-D with one entry per item; got "
                f"{self.labels.shape} for {len(self.X)} items"
            )
        if not np.issubdtype(self.X.dtype, np.integer):
            raise DataValidationError(
                f"X must hold integer category codes, got {self.X.dtype}"
            )

    @property
    def n_items(self) -> int:
        return self.X.shape[0]

    @property
    def n_attributes(self) -> int:
        return self.X.shape[1]

    @property
    def n_classes(self) -> int:
        """Number of distinct ground-truth labels present."""
        return len(np.unique(self.labels))

    def subsample(self, n: int, seed: int | None = None) -> "CategoricalDataset":
        """A uniform random subset of ``n`` items (without replacement)."""
        if not 0 < n <= self.n_items:
            raise DataValidationError(
                f"subsample size {n} outside (0, {self.n_items}]"
            )
        rng = np.random.default_rng(seed)
        chosen = rng.choice(self.n_items, size=n, replace=False)
        return CategoricalDataset(
            X=self.X[chosen].copy(),
            labels=self.labels[chosen].copy(),
            name=f"{self.name}[n={n}]",
            metadata=dict(self.metadata),
        )

    def describe(self) -> dict[str, Any]:
        """Summary statistics for logging and reports."""
        return {
            "name": self.name,
            "n_items": self.n_items,
            "n_attributes": self.n_attributes,
            "n_classes": self.n_classes,
            "domain_size": int(self.X.max()) + 1 if self.X.size else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CategoricalDataset(name={self.name!r}, n_items={self.n_items}, "
            f"n_attributes={self.n_attributes}, n_classes={self.n_classes})"
        )
