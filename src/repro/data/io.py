"""Dataset, corpus and fitted-model persistence.

Datasets round-trip through ``.npz`` (matrices) plus embedded JSON
metadata; corpora round-trip through JSON-lines, one question per
line.  Both formats are self-describing and diff-friendly enough for
experiment artefacts.

Fitted models round-trip through the immutable
:class:`~repro.api.ClusterModel` artifact: an ``.npz`` holds the
arrays (centroids, labels, index band keys + cluster references) and
a ``.json`` sidecar holds the spec triple
(:class:`~repro.api.LSHSpec` / :class:`~repro.api.EngineSpec` /
:class:`~repro.api.TrainSpec`, via their ``to_dict`` round-trip),
estimator-own parameters and fitted scalars — human-readable
provenance.  The clustered LSH index is *not* serialised bucket by
bucket: band keys fully determine the buckets *and* the flat CSR
neighbour storage, so a loaded model predicts exactly like the
original — same shortlists, same CSR fast paths — including sharded
fits, which can be saved on one machine and reloaded on another.
Streamed inserts are persisted too: the band-key/assignment views
cover every inserted item, and the archive stores compact copies,
never the index's over-allocated growth buffers.

:func:`save_model` accepts a fitted estimator *or* a
:class:`~repro.api.ClusterModel`; :func:`load_cluster_model` returns
the artifact (all serving needs), while :func:`load_model` goes one
step further and reconstructs a fitted estimator from it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.yahoo import QuestionCorpus
from repro.exceptions import DataValidationError

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_corpus",
    "load_corpus",
    "save_model",
    "load_model",
    "load_cluster_model",
    "load_serve_spec",
]


def save_dataset(dataset: CategoricalDataset, path: str | Path) -> Path:
    """Write a dataset to ``<path>`` as compressed npz.

    Metadata is JSON-encoded into the archive, so one file carries the
    full provenance.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        X=dataset.X,
        labels=dataset.labels,
        name=np.str_(dataset.name),
        metadata=np.str_(json.dumps(dataset.metadata, default=str)),
    )
    return path


def load_dataset(path: str | Path) -> CategoricalDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"no such dataset file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        required = {"X", "labels", "name", "metadata"}
        missing = required - set(archive.files)
        if missing:
            raise DataValidationError(
                f"{path} is not a repro dataset (missing {sorted(missing)})"
            )
        return CategoricalDataset(
            X=archive["X"],
            labels=archive["labels"],
            name=str(archive["name"]),
            metadata=json.loads(str(archive["metadata"])),
        )


def save_corpus(corpus: QuestionCorpus, path: str | Path) -> Path:
    """Write a question corpus as JSON-lines.

    The first line is a header object (topic names + metadata); each
    following line is one question record.
    """
    path = Path(path)
    if path.suffix != ".jsonl":
        path = path.with_suffix(".jsonl")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "kind": "repro.QuestionCorpus",
            "topic_names": corpus.topic_names,
            "metadata": corpus.metadata,
        }
        handle.write(json.dumps(header) + "\n")
        for tokens, topic, true_topic in zip(
            corpus.questions, corpus.topics, corpus.true_topics
        ):
            record = {
                "tokens": list(tokens),
                "topic": int(topic),
                "true_topic": int(true_topic),
            }
            handle.write(json.dumps(record) + "\n")
    return path


def load_corpus(path: str | Path) -> QuestionCorpus:
    """Read a corpus written by :func:`save_corpus`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"no such corpus file: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise DataValidationError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("kind") != "repro.QuestionCorpus":
            raise DataValidationError(f"{path} is not a repro corpus file")
        questions: list[list[str]] = []
        topics: list[int] = []
        true_topics: list[int] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            questions.append(record["tokens"])
            topics.append(record["topic"])
            true_topics.append(record["true_topic"])
    return QuestionCorpus(
        questions=questions,
        topics=np.array(topics, dtype=np.int64),
        true_topics=np.array(true_topics, dtype=np.int64),
        topic_names=header["topic_names"],
        metadata=header.get("metadata", {}),
    )


# ----------------------------------------------------------------------
# fitted-model persistence
# ----------------------------------------------------------------------

#: Format tag written into every model sidecar.
_MODEL_KIND = "repro.Model"
#: Version 2: spec-driven sidecars carrying the ClusterModel artifact
#: (version 1 was the pre-spec flat-params layout).
_MODEL_FORMAT_VERSION = 2


def _json_safe(value):
    if isinstance(value, np.generic):
        return value.item()
    return value


def save_model(model, path: str | Path, serve=None) -> Path:
    """Write a fitted model as ``<path>.npz`` + ``<path>.json``.

    ``model`` may be a fitted estimator (anything exposing
    ``fitted_model()`` — every registered estimator does) or an
    already exported :class:`~repro.api.ClusterModel`.  The npz holds
    the arrays (centroids, training labels, index band keys + cluster
    references); the json sidecar holds the specs, estimator-own
    parameters and fitted scalars, human-readable for provenance.

    ``serve`` optionally persists a :class:`~repro.api.ServeSpec` (or
    its ``to_dict`` form) into the sidecar's spec block; ``repro
    serve`` and :meth:`repro.serve.ModelServer.from_path` pick it up
    as the model's deployment default (see :func:`load_serve_spec`).

    Returns the npz path; the sidecar sits next to it.
    """
    from repro.api.model import ClusterModel
    from repro.api.specs import ServeSpec

    if isinstance(model, ClusterModel):
        artifact = model
    else:
        export = getattr(model, "fitted_model", None)
        if export is None:
            raise DataValidationError(
                f"cannot persist {type(model).__name__}; pass a ClusterModel "
                "or an estimator exposing fitted_model() (any registered "
                "repro estimator)"
            )
        artifact = export()  # raises NotFittedError on unfitted estimators

    if serve is not None and not isinstance(serve, ServeSpec):
        serve = ServeSpec.from_dict(serve)  # validates eagerly

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays = {"centroids": artifact.centroids}
    if artifact.labels is not None:
        arrays["labels"] = artifact.labels
    if artifact.band_keys is not None:
        arrays["index_band_keys"] = artifact.band_keys
        arrays["index_assignments"] = artifact.assignments
    np.savez_compressed(path, **arrays)

    specs = artifact.specs_dict()
    if serve is not None:
        specs["serve"] = serve.to_dict()
    sidecar = {
        "kind": _MODEL_KIND,
        "format_version": _MODEL_FORMAT_VERSION,
        "algorithm": artifact.algorithm,
        "class": artifact.metadata.get("class", artifact.algorithm),
        "n_clusters": int(artifact.n_clusters),
        "specs": specs,
        "params": {k: _json_safe(v) for k, v in artifact.params.items()},
        "state": {k: _json_safe(v) for k, v in artifact.state.items()},
        "metadata": {k: _json_safe(v) for k, v in artifact.metadata.items()},
    }
    path.with_suffix(".json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_cluster_model(path: str | Path):
    """Read a :class:`~repro.api.ClusterModel` written by :func:`save_model`.

    The artifact is everything serving needs: ``predict`` works
    directly on it (bit-identically to the saved model) without ever
    constructing the training estimator.
    """
    from repro.api.model import ClusterModel
    from repro.api.specs import EngineSpec, LSHSpec, TrainSpec

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    sidecar_path = path.with_suffix(".json")
    if not path.exists() or not sidecar_path.exists():
        raise DataValidationError(
            f"no such model: expected both {path} and {sidecar_path}"
        )
    sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
    if sidecar.get("kind") != _MODEL_KIND:
        raise DataValidationError(f"{sidecar_path} is not a repro model sidecar")
    version = sidecar.get("format_version", 0)
    if version != _MODEL_FORMAT_VERSION:
        raise DataValidationError(
            f"{sidecar_path} has format_version {version}; this build reads "
            f"exactly {_MODEL_FORMAT_VERSION} (version 1 predates the spec "
            "API — re-save the model with this build)"
        )
    specs = sidecar.get("specs", {})
    if "engine" not in specs or "train" not in specs:
        raise DataValidationError(
            f"{sidecar_path} is missing the engine/train specs"
        )

    with np.load(path, allow_pickle=False) as archive:
        if "centroids" not in archive.files:
            raise DataValidationError(
                f"{path} is not a repro model archive (missing ['centroids'])"
            )
        centroids = archive["centroids"]
        labels = archive["labels"] if "labels" in archive.files else None
        band_keys = (
            archive["index_band_keys"]
            if "index_band_keys" in archive.files
            else None
        )
        index_assignments = (
            archive["index_assignments"]
            if "index_assignments" in archive.files
            else None
        )

    return ClusterModel(
        algorithm=sidecar.get("algorithm", ""),
        n_clusters=sidecar.get("n_clusters", 0),
        centroids=centroids,
        lsh=None if specs.get("lsh") is None else LSHSpec.from_dict(specs["lsh"]),
        engine=EngineSpec.from_dict(specs["engine"]),
        train=TrainSpec.from_dict(specs["train"]),
        labels=labels,
        band_keys=band_keys,
        assignments=index_assignments,
        params=sidecar.get("params", {}),
        state=sidecar.get("state", {}),
        metadata=sidecar.get("metadata", {}),
    )


def load_serve_spec(path: str | Path):
    """The :class:`~repro.api.ServeSpec` saved next to a model, if any.

    Returns ``None`` for models saved without one (``save_model``'s
    ``serve=`` argument); the serving layer then falls back to the
    default spec.
    """
    from repro.api.specs import ServeSpec

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    sidecar_path = path.with_suffix(".json")
    if not sidecar_path.exists():
        raise DataValidationError(f"no such model sidecar: {sidecar_path}")
    sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
    if sidecar.get("kind") != _MODEL_KIND:
        raise DataValidationError(f"{sidecar_path} is not a repro model sidecar")
    serve = sidecar.get("specs", {}).get("serve")
    return None if serve is None else ServeSpec.from_dict(serve)


def load_model(path: str | Path):
    """Reconstruct a fitted estimator written by :func:`save_model`.

    Reads the :class:`~repro.api.ClusterModel` artifact and builds the
    estimator from its specs; fitted arrays are restored and — for
    LSH-accelerated models — the clustered index is rebuilt from its
    band keys, so ``predict`` behaves exactly as on the instance that
    was saved.  ``stats_`` is not persisted (it describes the original
    fitting run, not the model).  Prefer :func:`load_cluster_model`
    when serving is all that is needed.
    """
    return load_cluster_model(path).to_estimator()
