"""Dataset and corpus persistence.

Datasets round-trip through ``.npz`` (matrices) plus embedded JSON
metadata; corpora round-trip through JSON-lines, one question per
line.  Both formats are self-describing and diff-friendly enough for
experiment artefacts.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.yahoo import QuestionCorpus
from repro.exceptions import DataValidationError

__all__ = ["save_dataset", "load_dataset", "save_corpus", "load_corpus"]


def save_dataset(dataset: CategoricalDataset, path: str | Path) -> Path:
    """Write a dataset to ``<path>`` as compressed npz.

    Metadata is JSON-encoded into the archive, so one file carries the
    full provenance.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        X=dataset.X,
        labels=dataset.labels,
        name=np.str_(dataset.name),
        metadata=np.str_(json.dumps(dataset.metadata, default=str)),
    )
    return path


def load_dataset(path: str | Path) -> CategoricalDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"no such dataset file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        required = {"X", "labels", "name", "metadata"}
        missing = required - set(archive.files)
        if missing:
            raise DataValidationError(
                f"{path} is not a repro dataset (missing {sorted(missing)})"
            )
        return CategoricalDataset(
            X=archive["X"],
            labels=archive["labels"],
            name=str(archive["name"]),
            metadata=json.loads(str(archive["metadata"])),
        )


def save_corpus(corpus: QuestionCorpus, path: str | Path) -> Path:
    """Write a question corpus as JSON-lines.

    The first line is a header object (topic names + metadata); each
    following line is one question record.
    """
    path = Path(path)
    if path.suffix != ".jsonl":
        path = path.with_suffix(".jsonl")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "kind": "repro.QuestionCorpus",
            "topic_names": corpus.topic_names,
            "metadata": corpus.metadata,
        }
        handle.write(json.dumps(header) + "\n")
        for tokens, topic, true_topic in zip(
            corpus.questions, corpus.topics, corpus.true_topics
        ):
            record = {
                "tokens": list(tokens),
                "topic": int(topic),
                "true_topic": int(true_topic),
            }
            handle.write(json.dumps(record) + "\n")
    return path


def load_corpus(path: str | Path) -> QuestionCorpus:
    """Read a corpus written by :func:`save_corpus`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"no such corpus file: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise DataValidationError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("kind") != "repro.QuestionCorpus":
            raise DataValidationError(f"{path} is not a repro corpus file")
        questions: list[list[str]] = []
        topics: list[int] = []
        true_topics: list[int] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            questions.append(record["tokens"])
            topics.append(record["topic"])
            true_topics.append(record["true_topic"])
    return QuestionCorpus(
        questions=questions,
        topics=np.array(topics, dtype=np.int64),
        true_topics=np.array(true_topics, dtype=np.int64),
        topic_names=header["topic_names"],
        metadata=header.get("metadata", {}),
    )
