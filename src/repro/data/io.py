"""Dataset, corpus and fitted-model persistence.

Datasets round-trip through ``.npz`` (matrices) plus embedded JSON
metadata; corpora round-trip through JSON-lines, one question per
line.  Both formats are self-describing and diff-friendly enough for
experiment artefacts.

Fitted estimators round-trip through an ``.npz`` (centroids, labels,
index band keys) plus a ``.json`` sidecar (constructor parameters —
hash seeds, banding, engine knobs — and scalar fitted state).  The
clustered LSH index is *not* serialised bucket by bucket: band keys
fully determine the buckets *and* the flat CSR neighbour storage, so
:func:`load_model` rebuilds the index with
:meth:`~repro.lsh.index.ClusteredLSHIndex.from_band_keys` and the
loaded model predicts exactly like the original — same shortlists,
same CSR fast paths — including sharded fits, which can be saved on
one machine and reloaded on another.  Streamed inserts are persisted
too: the band-key/assignment views cover every inserted item, and the
archive stores compact copies, never the index's over-allocated
growth buffers.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.yahoo import QuestionCorpus
from repro.exceptions import DataValidationError, NotFittedError

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_corpus",
    "load_corpus",
    "save_model",
    "load_model",
]


def save_dataset(dataset: CategoricalDataset, path: str | Path) -> Path:
    """Write a dataset to ``<path>`` as compressed npz.

    Metadata is JSON-encoded into the archive, so one file carries the
    full provenance.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        X=dataset.X,
        labels=dataset.labels,
        name=np.str_(dataset.name),
        metadata=np.str_(json.dumps(dataset.metadata, default=str)),
    )
    return path


def load_dataset(path: str | Path) -> CategoricalDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"no such dataset file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        required = {"X", "labels", "name", "metadata"}
        missing = required - set(archive.files)
        if missing:
            raise DataValidationError(
                f"{path} is not a repro dataset (missing {sorted(missing)})"
            )
        return CategoricalDataset(
            X=archive["X"],
            labels=archive["labels"],
            name=str(archive["name"]),
            metadata=json.loads(str(archive["metadata"])),
        )


def save_corpus(corpus: QuestionCorpus, path: str | Path) -> Path:
    """Write a question corpus as JSON-lines.

    The first line is a header object (topic names + metadata); each
    following line is one question record.
    """
    path = Path(path)
    if path.suffix != ".jsonl":
        path = path.with_suffix(".jsonl")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "kind": "repro.QuestionCorpus",
            "topic_names": corpus.topic_names,
            "metadata": corpus.metadata,
        }
        handle.write(json.dumps(header) + "\n")
        for tokens, topic, true_topic in zip(
            corpus.questions, corpus.topics, corpus.true_topics
        ):
            record = {
                "tokens": list(tokens),
                "topic": int(topic),
                "true_topic": int(true_topic),
            }
            handle.write(json.dumps(record) + "\n")
    return path


def load_corpus(path: str | Path) -> QuestionCorpus:
    """Read a corpus written by :func:`save_corpus`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"no such corpus file: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise DataValidationError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("kind") != "repro.QuestionCorpus":
            raise DataValidationError(f"{path} is not a repro corpus file")
        questions: list[list[str]] = []
        topics: list[int] = []
        true_topics: list[int] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            questions.append(record["tokens"])
            topics.append(record["topic"])
            true_topics.append(record["true_topic"])
    return QuestionCorpus(
        questions=questions,
        topics=np.array(topics, dtype=np.int64),
        true_topics=np.array(true_topics, dtype=np.int64),
        topic_names=header["topic_names"],
        metadata=header.get("metadata", {}),
    )


# ----------------------------------------------------------------------
# fitted-model persistence
# ----------------------------------------------------------------------

#: Format tag written into every model sidecar.
_MODEL_KIND = "repro.Model"
_MODEL_FORMAT_VERSION = 1

#: Non-parameter fitted attributes persisted when present (per class,
#: attribute name → saved verbatim in the sidecar).
_EXTRA_STATE_ATTRS = ("_fitted_domain_size",)


def _model_registry() -> dict[str, type]:
    """Persistable estimator classes, resolved lazily to avoid cycles."""
    from repro.core.mh_kmodes import MHKModes
    from repro.kmeans.mh_kmeans import LSHKMeans
    from repro.kmodes.kmodes import KModes

    return {cls.__name__: cls for cls in (MHKModes, LSHKMeans, KModes)}


def _constructor_params(model) -> dict:
    """Recover constructor arguments from same-named attributes."""
    from repro.engine import ExecutionBackend

    params = {}
    for name in inspect.signature(type(model).__init__).parameters:
        if name == "self" or not hasattr(model, name):
            continue
        value = getattr(model, name)
        if isinstance(value, ExecutionBackend):
            value = value.name  # backends persist by name, not by pool
        if isinstance(value, np.generic):
            value = value.item()
        params[name] = value
    return params


def save_model(model, path: str | Path) -> Path:
    """Write a fitted estimator as ``<path>.npz`` + ``<path>.json``.

    The npz holds the arrays (centroids, training labels, index band
    keys); the json sidecar holds the constructor parameters and scalar
    fitted state, human-readable for provenance.  Supported classes:
    ``MHKModes``, ``LSHKMeans`` and the exhaustive ``KModes`` baseline.

    Returns the npz path; the sidecar sits next to it.
    """
    cls_name = type(model).__name__
    if cls_name not in _model_registry():
        raise DataValidationError(
            f"cannot persist {cls_name}; supported classes are "
            f"{sorted(_model_registry())}"
        )
    labels = getattr(model, "labels_", None)
    if labels is None:
        raise NotFittedError("cannot save an unfitted model; call fit first")
    centroids = getattr(model, "centroids_", None)
    if centroids is None:
        centroids = model.modes_  # KModes terminology

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays = {"centroids": centroids, "labels": labels}
    index = getattr(model, "index_", None)
    if index is not None:
        # band_keys is a live view into the index's doubling buffer;
        # copy so mutating the staged array can never corrupt the index.
        arrays["index_band_keys"] = index.band_keys.copy()
        arrays["index_assignments"] = index.assignments
    np.savez_compressed(path, **arrays)

    sidecar = {
        "kind": _MODEL_KIND,
        "format_version": _MODEL_FORMAT_VERSION,
        "class": cls_name,
        "params": _constructor_params(model),
        "extra_state": {
            name: getattr(model, name)
            for name in _EXTRA_STATE_ATTRS
            if getattr(model, name, None) is not None
        },
        "fitted": {
            "cost_": float(model.cost_),
            "n_iter_": int(model.n_iter_),
            "converged_": bool(model.converged_),
        },
    }
    path.with_suffix(".json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_model(path: str | Path):
    """Reconstruct an estimator written by :func:`save_model`.

    The constructor runs with the persisted parameters, fitted arrays
    are restored, and — for LSH-accelerated models — the clustered
    index is rebuilt from its band keys, so ``predict`` behaves exactly
    as on the instance that was saved.  ``stats_`` is not persisted
    (it describes the original fitting run, not the model).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    sidecar_path = path.with_suffix(".json")
    if not path.exists() or not sidecar_path.exists():
        raise DataValidationError(
            f"no such model: expected both {path} and {sidecar_path}"
        )
    sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
    if sidecar.get("kind") != _MODEL_KIND:
        raise DataValidationError(f"{sidecar_path} is not a repro model sidecar")
    version = sidecar.get("format_version", 0)
    if version > _MODEL_FORMAT_VERSION:
        raise DataValidationError(
            f"{sidecar_path} has format_version {version}; this build reads "
            f"up to {_MODEL_FORMAT_VERSION}"
        )
    cls = _model_registry().get(sidecar.get("class", ""))
    if cls is None:
        raise DataValidationError(
            f"unknown model class {sidecar.get('class')!r} in {sidecar_path}"
        )

    model = cls(**sidecar.get("params", {}))
    for name, value in sidecar.get("extra_state", {}).items():
        setattr(model, name, value)
    for name, value in sidecar.get("fitted", {}).items():
        setattr(model, name, value)

    with np.load(path, allow_pickle=False) as archive:
        required = {"centroids", "labels"}
        missing = required - set(archive.files)
        if missing:
            raise DataValidationError(
                f"{path} is not a repro model archive (missing {sorted(missing)})"
            )
        centroids = archive["centroids"]
        labels = archive["labels"]
        band_keys = (
            archive["index_band_keys"]
            if "index_band_keys" in archive.files
            else None
        )
        index_assignments = (
            archive["index_assignments"]
            if "index_assignments" in archive.files
            else None
        )

    if hasattr(model, "centroids_"):
        model.centroids_ = centroids
    else:
        model.modes_ = centroids  # KModes
    model.labels_ = labels
    if band_keys is not None and index_assignments is not None:
        # Rebuild in-process regardless of the model's fitted backend:
        # results are backend-invariant and a read-only load should not
        # fork a worker pool as a side effect.  The persisted n_shards
        # is honoured, so sharded fits reload sharded.
        from repro.engine import ClusteringEngine, SerialBackend

        engine = ClusteringEngine(SerialBackend(), n_shards=model.n_shards)
        model.index_ = engine.index_from_band_keys(
            model, band_keys, index_assignments
        )
    return model
