"""Dataset substrate: generators, text pipeline, encodings, persistence.

The paper evaluates on (a) five synthetic categorical datasets built
with the long-defunct ``datgen`` tool and (b) the licence-gated Yahoo!
Answers Webscope corpus.  Neither is obtainable, so this package
rebuilds both from their descriptions:

* :mod:`repro.data.datgen` — conjunctive-rule categorical generator
  matching Section IV-A's description of the datgen configuration;
* :mod:`repro.data.yahoo` — topic-tagged question corpus generator
  with Zipfian vocabulary and noisy user labels, standing in for the
  Webscope L6 data;
* :mod:`repro.data.text` / :mod:`repro.data.tfidf` — tokeniser,
  vocabulary, and the TF-IDF word selection of Section IV-B;
* :mod:`repro.data.encoding` — raw-value → integer-code encoders and
  the binary word-presence encoding with feature-name augmentation;
* :mod:`repro.data.io` — save/load round trips for datasets,
  corpora and fitted models (npz + jsonl/json sidecars).
"""

from repro.data.datgen import ClusterRule, RuleBasedGenerator
from repro.data.dataset import CategoricalDataset
from repro.data.encoding import (
    CategoricalEncoder,
    augment_presence_features,
    encode_presence_matrix,
)
from repro.data.io import (
    load_corpus,
    load_dataset,
    load_cluster_model,
    load_model,
    load_serve_spec,
    save_corpus,
    save_dataset,
    save_model,
)
from repro.data.text import Vocabulary, tokenize
from repro.data.tfidf import TfIdfVectorizer, select_topic_vocabulary
from repro.data.yahoo import QuestionCorpus, YahooAnswersSynthesizer, corpus_to_dataset

__all__ = [
    "CategoricalDataset",
    "RuleBasedGenerator",
    "ClusterRule",
    "YahooAnswersSynthesizer",
    "QuestionCorpus",
    "corpus_to_dataset",
    "Vocabulary",
    "tokenize",
    "TfIdfVectorizer",
    "select_topic_vocabulary",
    "CategoricalEncoder",
    "encode_presence_matrix",
    "augment_presence_features",
    "save_dataset",
    "load_dataset",
    "save_corpus",
    "load_corpus",
    "save_model",
    "load_model",
    "load_cluster_model",
    "load_serve_spec",
]
