"""TF-IDF word selection — the Section IV-B pre-processing step.

The paper builds its Yahoo! Answers feature space by treating each
*topic* as one document (all of its questions concatenated), scoring
every word with TF-IDF, and keeping the words whose score clears a
threshold (0.7 for the small feature space, 0.3 for the large one),
capped at 10 000 words per topic.

Scores here are normalised into [0, 1] so fixed thresholds behave
comparably across corpora:

    score(w, d) = (tf(w, d) / max_tf(d)) · (log(N / df(w)) / log N)

The first factor is augmented term frequency (1.0 for the most common
word of the document), the second is idf scaled by its maximum
``log N`` (1.0 for a word appearing in exactly one document).  Words
appearing in every document score 0, matching the paper's intuition
that topic-generic words carry no signal (Equation 7).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from repro.data.text import Vocabulary
from repro.exceptions import ConfigurationError, DataValidationError

__all__ = ["TfIdfVectorizer", "select_topic_vocabulary"]


class TfIdfVectorizer:
    """Per-document TF-IDF scores over token-list documents.

    Examples
    --------
    >>> docs = [["zoo", "zoo", "animal"], ["tax", "animal"]]
    >>> vec = TfIdfVectorizer().fit(docs)
    >>> vec.score("zoo", 0) > vec.score("animal", 0)
    True
    """

    def __init__(self) -> None:
        self.vocabulary: Vocabulary | None = None
        self._term_counts: list[Counter[str]] = []
        self._max_tf: list[int] = []

    def fit(self, documents: Sequence[Sequence[str]]) -> "TfIdfVectorizer":
        """Collect term and document frequencies."""
        if not documents:
            raise DataValidationError("cannot fit TF-IDF on zero documents")
        self.vocabulary = Vocabulary().fit(documents)
        self._term_counts = [Counter(tokens) for tokens in documents]
        self._max_tf = [
            max(counts.values()) if counts else 0 for counts in self._term_counts
        ]
        return self

    @property
    def n_documents(self) -> int:
        return len(self._term_counts)

    def idf(self, word: str) -> float:
        """Normalised inverse document frequency in [0, 1]."""
        self._check_fitted()
        assert self.vocabulary is not None
        df = self.vocabulary.document_frequency.get(word, 0)
        if df == 0:
            return 0.0
        n = self.n_documents
        if n <= 1:
            return 0.0
        return float(np.log(n / df) / np.log(n))

    def score(self, word: str, document: int) -> float:
        """Normalised TF-IDF of ``word`` in document ``document``."""
        self._check_fitted()
        if not 0 <= document < self.n_documents:
            raise DataValidationError(
                f"document {document} out of range [0, {self.n_documents})"
            )
        counts = self._term_counts[document]
        tf = counts.get(word, 0)
        if tf == 0:
            return 0.0
        max_tf = self._max_tf[document]
        return (tf / max_tf) * self.idf(word)

    def document_scores(self, document: int) -> dict[str, float]:
        """All non-zero word scores of one document."""
        self._check_fitted()
        if not 0 <= document < self.n_documents:
            raise DataValidationError(
                f"document {document} out of range [0, {self.n_documents})"
            )
        counts = self._term_counts[document]
        max_tf = self._max_tf[document]
        if max_tf == 0:
            return {}
        return {
            word: (tf / max_tf) * self.idf(word) for word, tf in counts.items()
        }

    def _check_fitted(self) -> None:
        if self.vocabulary is None:
            raise DataValidationError("TfIdfVectorizer is not fitted; call fit")


def select_topic_vocabulary(
    topic_documents: Sequence[Sequence[str]],
    threshold: float,
    max_words_per_topic: int = 10_000,
) -> list[str]:
    """The paper's vocabulary selection (Section IV-B).

    Each entry of ``topic_documents`` is one topic's concatenated token
    stream.  Every topic contributes its words scoring above
    ``threshold`` (up to ``max_words_per_topic``, highest scores
    first); the union, sorted for determinism, is the vocabulary.

    The paper uses ``threshold=0.7`` (→ 382 attributes) and ``0.3``
    (→ 2881 attributes) on the real corpus; lowering the threshold
    grows the vocabulary the same way here.

    Parameters
    ----------
    topic_documents:
        One token list per topic.
    threshold:
        Minimum normalised TF-IDF score, in (0, 1].
    max_words_per_topic:
        Cap on words contributed by a single topic.

    Returns
    -------
    list[str]
        Sorted vocabulary words.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    if max_words_per_topic <= 0:
        raise ConfigurationError(
            f"max_words_per_topic must be positive, got {max_words_per_topic}"
        )
    vectorizer = TfIdfVectorizer().fit(topic_documents)
    selected: set[str] = set()
    for doc_idx in range(vectorizer.n_documents):
        scores = vectorizer.document_scores(doc_idx)
        passing = sorted(
            (word for word, s in scores.items() if s >= threshold),
            key=lambda w: (-scores[w], w),
        )
        selected.update(passing[:max_words_per_topic])
    return sorted(selected)
