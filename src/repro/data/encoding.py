"""Encoders between raw categorical values and integer code matrices.

Three pieces:

* :class:`CategoricalEncoder` — general string/object matrices to
  per-column integer codes and back (what a user brings from a CSV);
* :func:`encode_presence_matrix` — token lists to the paper's binary
  word-presence matrix (one attribute per vocabulary word);
* :func:`augment_presence_features` — the paper's ``'zoo-0'/'zoo-1'``
  feature-name augmentation, which makes presence values distinct
  across attributes for set-based hashing.  The integer pipeline in
  :mod:`repro.lsh.tokens` achieves the same effect by offsetting
  tokens per attribute; this function exists for interoperability and
  for demonstrating the paper's exact representation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import DataValidationError, NotFittedError

__all__ = [
    "CategoricalEncoder",
    "encode_presence_matrix",
    "augment_presence_features",
]


class CategoricalEncoder:
    """Per-column mapping of raw categorical values to integer codes.

    Codes are assigned per column in first-seen order.  Unknown values
    at transform time either raise (default) or map to a reserved code
    per column (``unknown='code'``).

    Examples
    --------
    >>> enc = CategoricalEncoder()
    >>> codes = enc.fit_transform([["red", "small"], ["blue", "small"]])
    >>> codes.tolist()
    [[0, 0], [1, 0]]
    >>> enc.inverse_transform(codes)[0]
    ['red', 'small']
    """

    def __init__(self, unknown: str = "error"):
        if unknown not in ("error", "code"):
            raise DataValidationError(
                f"unknown must be 'error' or 'code', got {unknown!r}"
            )
        self.unknown = unknown
        self._maps: list[dict[object, int]] | None = None
        self._inverse: list[list[object]] | None = None

    def fit(self, rows: Sequence[Sequence[object]]) -> "CategoricalEncoder":
        """Learn per-column code maps from raw rows."""
        rows = list(rows)
        if not rows:
            raise DataValidationError("cannot fit an encoder on zero rows")
        n_cols = len(rows[0])
        if n_cols == 0:
            raise DataValidationError("rows must have at least one column")
        maps: list[dict[object, int]] = [{} for _ in range(n_cols)]
        inverse: list[list[object]] = [[] for _ in range(n_cols)]
        for row in rows:
            if len(row) != n_cols:
                raise DataValidationError(
                    f"ragged input: expected {n_cols} columns, got {len(row)}"
                )
            for j, value in enumerate(row):
                if value not in maps[j]:
                    maps[j][value] = len(inverse[j])
                    inverse[j].append(value)
        self._maps = maps
        self._inverse = inverse
        return self

    def transform(self, rows: Sequence[Sequence[object]]) -> np.ndarray:
        """Raw rows → ``(n, m)`` int64 code matrix."""
        if self._maps is None or self._inverse is None:
            raise NotFittedError("encoder is not fitted; call fit first")
        rows = list(rows)
        n_cols = len(self._maps)
        out = np.empty((len(rows), n_cols), dtype=np.int64)
        for i, row in enumerate(rows):
            if len(row) != n_cols:
                raise DataValidationError(
                    f"ragged input: expected {n_cols} columns, got {len(row)}"
                )
            for j, value in enumerate(row):
                code = self._maps[j].get(value)
                if code is None:
                    if self.unknown == "error":
                        raise DataValidationError(
                            f"unknown value {value!r} in column {j}"
                        )
                    code = len(self._inverse[j])  # shared 'unknown' code
                out[i, j] = code
        return out

    def fit_transform(self, rows: Sequence[Sequence[object]]) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(rows).transform(rows)

    def inverse_transform(self, codes: np.ndarray) -> list[list[object]]:
        """Code matrix → raw rows (unknown codes become ``None``)."""
        if self._maps is None or self._inverse is None:
            raise NotFittedError("encoder is not fitted; call fit first")
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != len(self._inverse):
            raise DataValidationError(
                f"expected shape (n, {len(self._inverse)}), got {codes.shape}"
            )
        out: list[list[object]] = []
        for row in codes:
            decoded: list[object] = []
            for j, code in enumerate(row):
                column = self._inverse[j]
                decoded.append(column[code] if 0 <= code < len(column) else None)
            out.append(decoded)
        return out

    @property
    def n_columns(self) -> int:
        if self._maps is None:
            raise NotFittedError("encoder is not fitted; call fit first")
        return len(self._maps)

    def domain_sizes(self) -> list[int]:
        """Number of distinct values seen per column."""
        if self._inverse is None:
            raise NotFittedError("encoder is not fitted; call fit first")
        return [len(col) for col in self._inverse]


def encode_presence_matrix(
    documents: Sequence[Sequence[str]], vocabulary: Sequence[str]
) -> np.ndarray:
    """Token lists → binary word-presence matrix (Section IV-B encoding).

    Attribute ``j`` is vocabulary word ``j``; the value is 1 when the
    word occurs in the document, else 0.  Cluster the result with
    ``absent_code=0`` so that MinHash sees only present words, as the
    paper's Algorithm 2 (lines 1-4) prescribes.

    Returns
    -------
    numpy.ndarray
        ``(n_documents, len(vocabulary))`` int64 0/1 matrix.
    """
    if not vocabulary:
        raise DataValidationError("vocabulary must be non-empty")
    word_to_col = {word: j for j, word in enumerate(vocabulary)}
    if len(word_to_col) != len(vocabulary):
        raise DataValidationError("vocabulary contains duplicate words")
    out = np.zeros((len(documents), len(vocabulary)), dtype=np.int64)
    for i, tokens in enumerate(documents):
        for token in tokens:
            col = word_to_col.get(token)
            if col is not None:
                out[i, col] = 1
    return out


def augment_presence_features(
    B: np.ndarray, feature_names: Sequence[str]
) -> np.ndarray:
    """The paper's ``'zoo-0'/'zoo-1'`` value augmentation, verbatim.

    MinHash treats items as *sets*, discarding attribute order, so a
    bare 0/1 value would collide across attributes.  The paper appends
    the feature name to the value; this function reproduces that
    string representation.

    Returns
    -------
    numpy.ndarray
        Object array of the same shape holding e.g. ``"zoo-1"``.
    """
    B = np.asarray(B)
    if B.ndim != 2:
        raise DataValidationError(f"expected 2-D matrix, got ndim={B.ndim}")
    if B.shape[1] != len(feature_names):
        raise DataValidationError(
            f"{B.shape[1]} columns but {len(feature_names)} feature names"
        )
    out = np.empty(B.shape, dtype=object)
    for j, name in enumerate(feature_names):
        column = B[:, j] != 0
        out[column, j] = f"{name}-1"
        out[~column, j] = f"{name}-0"
    return out
