"""Human-facing rendering of observability data.

The CLI used to carry two copies of the same phase-timing formatter
(the ``cluster`` and ``extend`` subcommands); this module is the one
shared implementation.
"""

from __future__ import annotations

__all__ = ["format_phase_timings"]


def format_phase_timings(phase_s: dict[str, float]) -> str:
    """``{"signatures": 0.0123, ...}`` → ``"signatures=0.012s ..."``.

    One space-separated ``name=seconds`` token per phase, in the
    dict's insertion order (which both ``RunStats.phase_s`` and
    ``extend_stats_`` keep meaningful: pipeline order).
    """
    return " ".join(
        f"{name}={seconds:.3f}s" for name, seconds in phase_s.items()
    )
