"""Process-local metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per scope (the process default from
:func:`metrics`, or a private one per :class:`repro.serve.ModelServer`)
holds every instrument behind a single lock.  Three properties shape
the design:

* **Fixed buckets.**  Histograms never rebucket; observation is an
  O(log buckets) bisect plus two adds, cheap enough for per-request
  hot paths, and two histograms with identical buckets merge by plain
  element-wise addition.
* **Snapshot/merge.**  :meth:`MetricsRegistry.snapshot` renders the
  whole registry into a JSON-safe dict and
  :meth:`MetricsRegistry.merge` folds such a dict back in (counters
  and histograms add, gauges last-write-win).  This is the transport
  that attributes process-pool worker time to the parent: workers
  capture a fresh registry around each kernel call
  (:func:`capture_metrics`) and ship the delta home with the result
  (see :meth:`repro.engine.backends.BackendSession.run_metered`).
* **Prometheus text.**  :meth:`MetricsRegistry.to_prometheus` renders
  the standard exposition format served by ``GET /metrics``.
"""

from __future__ import annotations

import contextlib
import re
import threading
from bisect import bisect_left
from typing import Iterator

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "metrics",
    "capture_metrics",
]

#: Request-latency buckets (seconds): sub-millisecond serving up to
#: ten-second batch jobs.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Batch-size buckets (rows): single-row pushes up to max-batch sweeps.
DEFAULT_SIZE_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ConfigurationError(
            f"metric names must match {_NAME_RE.pattern}, got {name!r}"
        )
    return name


def _check_labels(labels: dict | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    items = []
    for key, value in sorted(labels.items()):
        if not isinstance(key, str) or not _LABEL_RE.match(key):
            raise ConfigurationError(
                f"label names must match {_LABEL_RE.pattern}, got {key!r}"
            )
        items.append((key, str(value)))
    return tuple(items)


class _Instrument:
    """Shared identity bits: ``(name, sorted labels)`` keys a metric."""

    kind = "abstract"

    def __init__(
        self, name: str, labels: tuple[tuple[str, str], ...], help: str
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def key(self) -> tuple[str, tuple[tuple[str, str], ...]]:
        return (self.name, self.labels)


class Counter(_Instrument):
    """A monotonically increasing value (requests, errors, seconds)."""

    kind = "counter"

    def __init__(self, name, labels=(), help="") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative; counters never go down)."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only increase; got inc({amount!r})"
            )
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can go both ways (in-flight requests, pool size)."""

    kind = "gauge"

    def __init__(self, name, labels=(), help="") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Fixed-bucket distribution with a cumulative ``+Inf`` tail.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket always follows.  ``bucket_counts[i]`` is
    the number of observations with ``value <= buckets[i]`` minus those
    in earlier buckets (per-bucket counts; the Prometheus renderer
    cumulates them).
    """

    kind = "histogram"

    def __init__(
        self, name, labels=(), help="", buckets=DEFAULT_LATENCY_BUCKETS_S
    ) -> None:
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                f"histogram buckets must be a non-empty strictly increasing "
                f"sequence, got {buckets!r}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf tail
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def bucket_counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation.

        The estimate interpolates within the bucket holding the target
        rank (the standard Prometheus ``histogram_quantile`` scheme);
        observations beyond the last finite bound clamp to it.  An
        empty histogram estimates 0.0.

        The first bucket's span starts at 0.0 only when its bound is
        positive (latency-style histograms); a non-positive first bound
        estimates the bound itself, never a value above it.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        lower = min(0.0, self.buckets[0])
        for upper, count in zip(self.buckets, counts):
            if count and cumulative + count >= rank:
                fraction = max(rank - cumulative, 0.0) / count
                return lower + (upper - lower) * fraction
            cumulative += count
            lower = upper
        return self.buckets[-1]

    def _merge_counts(self, bucket_counts: list[int], total_sum: float) -> None:
        with self._lock:
            for i, count in enumerate(bucket_counts):
                self._counts[i] += int(count)
            self._sum += float(total_sum)


class MetricsRegistry:
    """Get-or-create home for every instrument in one scope.

    All three factories are idempotent: asking again with the same
    ``(name, labels)`` returns the existing instrument; asking with a
    conflicting kind (or conflicting histogram buckets) raises
    :class:`~repro.exceptions.ConfigurationError`.  The registry lock
    only guards the instrument table — each instrument carries its own
    lock, so hot-path updates never contend with registration.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, _Instrument] = {}

    # -- factories -------------------------------------------------------

    def _get_or_create(self, cls, name, labels, help, **kwargs):
        key = (_check_name(name), _check_labels(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                wanted = kwargs.get("buckets")
                if wanted is not None and tuple(
                    float(b) for b in wanted
                ) != existing.buckets:
                    raise ConfigurationError(
                        f"histogram {name!r} is already registered with "
                        f"buckets {existing.buckets}"
                    )
                return existing
            instrument = cls(key[0], key[1], help, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets=DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, help, buckets=buckets
        )

    # -- read surface ----------------------------------------------------

    def get(self, name: str, labels: dict | None = None) -> _Instrument | None:
        """The registered instrument for ``(name, labels)``, or ``None``."""
        with self._lock:
            return self._instruments.get((name, _check_labels(labels)))

    def value(self, name: str, labels: dict | None = None) -> float | None:
        """Counter/gauge value (histograms: observation count)."""
        instrument = self.get(name, labels)
        if instrument is None:
            return None
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value

    def __iter__(self) -> Iterator[_Instrument]:
        with self._lock:
            return iter(list(self._instruments.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> dict:
        """The whole registry as a JSON-safe dict (see :meth:`merge`)."""
        counters, gauges, histograms = [], [], []
        for instrument in self:
            entry = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
                "help": instrument.help,
            }
            if isinstance(instrument, Counter):
                counters.append({**entry, "value": instrument.value})
            elif isinstance(instrument, Gauge):
                gauges.append({**entry, "value": instrument.value})
            else:
                assert isinstance(instrument, Histogram)
                with instrument._lock:
                    counts = list(instrument._counts)
                    total = instrument._sum
                histograms.append(
                    {
                        **entry,
                        "buckets": list(instrument.buckets),
                        "bucket_counts": counts,
                        "sum": total,
                    }
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters and histogram buckets **add** (the snapshot is a delta
        or a sibling scope's totals); gauges **overwrite** (a gauge is
        a level, and the snapshot's reading is the newer one).  Unknown
        instruments are created on first sight, so merging into an
        empty registry reconstructs the source exactly.
        """
        for entry in snapshot.get("counters", ()):
            self.counter(
                entry["name"], help=entry.get("help", ""), labels=entry["labels"]
            ).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(
                entry["name"], help=entry.get("help", ""), labels=entry["labels"]
            ).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            histogram = self.histogram(
                entry["name"],
                help=entry.get("help", ""),
                labels=entry["labels"],
                buckets=entry["buckets"],
            )
            histogram._merge_counts(entry["bucket_counts"], entry["sum"])

    # -- Prometheus text exposition --------------------------------------

    def to_prometheus(self) -> str:
        """Render the standard text exposition format (one family per
        metric name: ``# HELP``/``# TYPE`` headers, then every labelled
        series; histograms expand to cumulative ``_bucket`` series plus
        ``_sum`` and ``_count``)."""
        families: dict[str, list[_Instrument]] = {}
        for instrument in self:
            families.setdefault(instrument.name, []).append(instrument)
        lines: list[str] = []
        for name, instruments in families.items():
            first = instruments[0]
            if first.help:
                lines.append(f"# HELP {name} {_escape_help(first.help)}")
            lines.append(f"# TYPE {name} {first.kind}")
            for instrument in instruments:
                if isinstance(instrument, Histogram):
                    _render_histogram(lines, instrument)
                else:
                    lines.append(
                        f"{name}{_label_text(instrument.labels)} "
                        f"{_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(labels) + tuple(extra)
    if not items:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"' for key, value in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def _format_bound(bound: float) -> str:
    return str(int(bound)) if float(bound).is_integer() else repr(float(bound))


def _render_histogram(lines: list[str], histogram: Histogram) -> None:
    cumulative = 0
    counts = histogram.bucket_counts
    for bound, count in zip(histogram.buckets, counts):
        cumulative += count
        lines.append(
            f"{histogram.name}_bucket"
            f"{_label_text(histogram.labels, (('le', _format_bound(bound)),))}"
            f" {cumulative}"
        )
    cumulative += counts[-1]
    lines.append(
        f"{histogram.name}_bucket"
        f"{_label_text(histogram.labels, (('le', '+Inf'),))} {cumulative}"
    )
    lines.append(
        f"{histogram.name}_sum{_label_text(histogram.labels)} "
        f"{_format_value(histogram.sum)}"
    )
    lines.append(
        f"{histogram.name}_count{_label_text(histogram.labels)} {cumulative}"
    )


# ----------------------------------------------------------------------
# the process-local default registry
# ----------------------------------------------------------------------

_default_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-local default registry.

    Spans (:func:`repro.obs.span`) record here unless pointed at a
    private registry, and process-pool workers capture deltas of it to
    ship home — each worker process has its own, so the counters never
    race across processes.
    """
    return _default_registry


@contextlib.contextmanager
def capture_metrics():
    """Swap in a fresh default registry for the duration of a block.

    Yields the fresh registry; everything recorded through
    :func:`metrics` inside the block lands there, and the previous
    default is restored afterwards.  This is how process-pool workers
    measure exactly one kernel call's delta (fork-inherited parent
    counts never leak in), and how benchmarks scope a measurement to
    one run.  Swapping a module global is not async-signal safe across
    threads — confine concurrent use to the worker/bench patterns
    above.
    """
    global _default_registry
    previous = _default_registry
    fresh = MetricsRegistry()
    _default_registry = fresh
    try:
        yield fresh
    finally:
        _default_registry = previous
