"""Tracing spans: one wall-clock emitter for fit, extend, and serve.

A :class:`span` is a context manager built on
:class:`repro.instrumentation.Timer` that (a) measures one wall-clock
interval, (b) nests — each thread keeps a span stack, so a span knows
its parent, depth, and completed children — (c) rolls its duration
into a :class:`~repro.obs.registry.MetricsRegistry` as the
``repro_span_seconds_total`` / ``repro_span_calls_total`` counter pair
labelled by span name, and (d) emits a structured JSON trace event
when tracing is enabled (:func:`repro.obs.events.enable_tracing`).

The phase dicts the estimators expose (``RunStats.phase_s``,
``StreamingMHKModes.extend_stats_``) are fed by :class:`PhaseSpans`, a
thin accumulator over :class:`span`: the measured interval is the
*same* ``Timer`` reading the old hand-rolled code recorded, so the
published values keep their exact semantics while also landing in the
registry and the trace stream.
"""

from __future__ import annotations

import contextlib
import threading
from types import TracebackType
from typing import Callable

from repro.instrumentation.timer import Timer
from repro.obs import events
from repro.obs.registry import MetricsRegistry, metrics

__all__ = ["span", "current_span", "traced", "PhaseSpans"]

_LOCAL = threading.local()


def _span_stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_span() -> "span | None":
    """The innermost span open on this thread (``None`` outside spans)."""
    stack = _span_stack()
    return stack[-1] if stack else None


class span:
    """Measure one named wall-clock interval; nest freely.

    Parameters
    ----------
    name:
        Dotted span name (``"fit.signatures"``, ``"serve.predict_chunk"``).
        Becomes the ``span`` label on the registry counters and the
        ``name`` field of trace events.
    registry:
        Target registry; ``None`` records into the process default
        (:func:`repro.obs.metrics`) — resolved at *exit*, so spans
        inside :func:`~repro.obs.capture_metrics` land in the captured
        registry.
    **attributes:
        Arbitrary JSON-safe values attached to the trace event.

    After exit, ``wall_s`` (alias ``elapsed_s``) holds the duration and
    ``children`` the completed sub-spans entered on the same thread.
    """

    def __init__(
        self, name: str, registry: MetricsRegistry | None = None, **attributes
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.wall_s = 0.0
        self.depth = 0
        self.parent: span | None = None
        self.children: list[span] = []
        self._registry = registry
        self._timer = Timer()

    @property
    def elapsed_s(self) -> float:
        return self.wall_s

    def __enter__(self) -> "span":
        stack = _span_stack()
        self.parent = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._timer.__enter__()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._timer.__exit__(exc_type, exc, tb)
        self.wall_s = self._timer.elapsed_s
        stack = _span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self.parent is not None:
            self.parent.children.append(self)
        registry = self._registry if self._registry is not None else metrics()
        registry.counter(
            "repro_span_seconds_total",
            help="Wall-clock seconds spent inside each span.",
            labels={"span": self.name},
        ).inc(self.wall_s)
        registry.counter(
            "repro_span_calls_total",
            help="Times each span was entered.",
            labels={"span": self.name},
        ).inc()
        if events.tracing_enabled():
            events.emit_event(
                "span",
                name=self.name,
                wall_s=self.wall_s,
                depth=self.depth,
                error=exc_type.__name__ if exc_type is not None else None,
                **self.attributes,
            )


def traced(name: str, registry: MetricsRegistry | None = None):
    """Decorator form of :class:`span` — wrap every call of a function.

    Used on the engine's worker kernels: each kernel call records one
    ``repro_span_*`` sample into its process-local default registry,
    which process pools then ship home (see
    :meth:`repro.engine.backends.BackendSession.run_metered`).  The
    wrapper stays a module-level name, so decorated kernels remain
    picklable for process dispatch.
    """

    def decorate(fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(name, registry=registry):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


class PhaseSpans:
    """Accumulate named phase durations through the span emitter.

    The estimator-facing face of the span API: ``totals[name]`` sums
    every completed ``phases.span(name)`` interval — exactly what the
    old hand-rolled ``Timer`` + ``dict`` code published as ``phase_s``
    and ``extend_stats_`` — while each interval also reaches the
    registry (span ``"<prefix>.<name>"``) and the trace stream.

    Parameters
    ----------
    prefix:
        Prepended to phase names for the emitted span (``"fit"`` →
        span ``"fit.signatures"``); totals stay keyed by the bare name.
    totals:
        Accumulate into this dict instead of a fresh one (pre-seeded
        zeros keep a fixed key set).
    registry:
        Forwarded to each :class:`span`.
    on_phase:
        ``(name, seconds)`` callback after each phase completes — the
        streaming estimator uses it to keep lifetime cumulative totals
        next to the per-call snapshot.
    """

    def __init__(
        self,
        prefix: str,
        totals: dict[str, float] | None = None,
        registry: MetricsRegistry | None = None,
        on_phase: Callable[[str, float], None] | None = None,
    ) -> None:
        self.prefix = prefix
        self.totals: dict[str, float] = {} if totals is None else totals
        self._registry = registry
        self._on_phase = on_phase

    @contextlib.contextmanager
    def span(self, name: str, **attributes):
        with span(
            f"{self.prefix}.{name}", registry=self._registry, **attributes
        ) as active:
            yield active
        self.totals[name] = self.totals.get(name, 0.0) + active.wall_s
        if self._on_phase is not None:
            self._on_phase(name, active.wall_s)
