"""Unified observability: metrics, tracing spans, structured events.

``repro.obs`` grows the measurement layer (:mod:`repro.instrumentation`
keeps the paper-shaped ``Timer``/``RunStats`` primitives) into the
production-facing one:

* :class:`MetricsRegistry` — process-local counters / gauges /
  fixed-bucket histograms with a snapshot/merge protocol that ships
  process-pool worker time home (:func:`capture_metrics` +
  :meth:`~repro.obs.registry.MetricsRegistry.merge`);
* :class:`span` / :class:`PhaseSpans` — the one wall-clock emitter
  behind ``RunStats.phase_s``, ``extend_stats_`` and the serving
  request metrics, nesting per thread and feeding the registry;
* :mod:`repro.obs.events` — opt-in JSON-lines trace output
  (``--trace`` on the CLI);
* :func:`format_phase_timings` — the shared CLI phase pretty-printer.

``GET /metrics`` on ``repro serve --http`` renders a registry with
:meth:`~repro.obs.registry.MetricsRegistry.to_prometheus`.
"""

from repro.obs.events import (
    disable_tracing,
    emit_event,
    enable_tracing,
    tracing_enabled,
)
from repro.obs.format import format_phase_timings
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    capture_metrics,
    metrics,
)
from repro.obs.spans import PhaseSpans, current_span, span, traced

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "metrics",
    "capture_metrics",
    "span",
    "current_span",
    "traced",
    "PhaseSpans",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "emit_event",
    "format_phase_timings",
]
