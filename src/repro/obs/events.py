"""Opt-in structured JSON event logging (one object per line).

Off by default and free when off: :func:`emit_event` is a single
``None`` check until :func:`enable_tracing` installs a sink.  When on,
every event renders as one JSON object per line — machine-diffable by
benches and CI — with an ``event`` kind, a wall-clock ``ts``, and the
emitter's fields.  Spans (:class:`repro.obs.span`) emit ``span``
events; anything else may call :func:`emit_event` directly.

The CLI flag ``--trace`` routes events to stderr so they never
interleave with NDJSON responses or result tables on stdout.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO

__all__ = [
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "emit_event",
]

_LOCK = threading.Lock()
_STREAM: IO[str] | None = None


def enable_tracing(stream: IO[str] | None = None) -> None:
    """Route JSON events to ``stream`` (default: ``sys.stderr``)."""
    global _STREAM
    with _LOCK:
        _STREAM = stream if stream is not None else sys.stderr


def disable_tracing() -> None:
    """Stop emitting events (the stream is not closed — callers own it)."""
    global _STREAM
    with _LOCK:
        _STREAM = None


def tracing_enabled() -> bool:
    return _STREAM is not None


def emit_event(kind: str, **fields) -> None:
    """Write one ``{"event": kind, "ts": ..., **fields}`` JSON line.

    A no-op unless tracing is enabled.  Serialisation falls back to
    ``str`` for exotic values, and the write happens under one lock so
    concurrent emitters never interleave partial lines.
    """
    with _LOCK:
        stream = _STREAM
        if stream is None:
            return
        payload = {"event": kind, "ts": time.time(), **fields}
        stream.write(json.dumps(payload, default=str) + "\n")
        stream.flush()
